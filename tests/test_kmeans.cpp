/// Tests for k-means clustering (RP-CLUSTERING's engine).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "ml/kmeans.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace bd::ml {
namespace {

/// Three well-separated 2-D blobs.
std::vector<double> three_blobs(std::size_t per_blob, util::Rng& rng) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  std::vector<double> pts;
  for (int b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      pts.push_back(centers[b][0] + rng.normal(0.0, 0.5));
      pts.push_back(centers[b][1] + rng.normal(0.0, 0.5));
    }
  }
  return pts;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  util::Rng rng(5);
  const std::vector<double> pts = three_blobs(50, rng);
  KMeansConfig config;
  config.clusters = 3;
  const KMeansResult result = kmeans(pts, 150, 2, config);
  // Each blob maps to one cluster: members of a blob share assignment.
  for (int b = 0; b < 3; ++b) {
    const std::uint32_t label = result.assignment[static_cast<std::size_t>(b) * 50];
    int agree = 0;
    for (int i = 0; i < 50; ++i) {
      if (result.assignment[static_cast<std::size_t>(b) * 50 +
                            static_cast<std::size_t>(i)] == label) {
        ++agree;
      }
    }
    EXPECT_GE(agree, 49) << "blob " << b;
  }
  // Distinct blobs get distinct labels.
  std::set<std::uint32_t> labels;
  for (int b = 0; b < 3; ++b) labels.insert(result.assignment[static_cast<std::size_t>(b) * 50]);
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  util::Rng rng(7);
  const std::vector<double> pts = three_blobs(40, rng);
  double prev = 1e300;
  for (std::size_t k : {1, 2, 3, 6}) {
    KMeansConfig config;
    config.clusters = k;
    const KMeansResult r = kmeans(pts, 120, 2, config);
    EXPECT_LE(r.inertia, prev * 1.0001) << "k=" << k;
    prev = r.inertia;
  }
}

TEST(KMeans, DeterministicForSeed) {
  util::Rng rng(9);
  const std::vector<double> pts = three_blobs(30, rng);
  KMeansConfig config;
  config.clusters = 4;
  const KMeansResult a = kmeans(pts, 90, 2, config);
  const KMeansResult b = kmeans(pts, 90, 2, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeans, BalancedCapsClusterSizes) {
  util::Rng rng(11);
  // Heavily imbalanced data: one dense blob, few outliers.
  std::vector<double> pts;
  for (int i = 0; i < 90; ++i) {
    pts.push_back(rng.normal(0.0, 0.1));
    pts.push_back(rng.normal(0.0, 0.1));
  }
  for (int i = 0; i < 10; ++i) {
    pts.push_back(100.0 + rng.normal(0.0, 0.1));
    pts.push_back(rng.normal(0.0, 0.1));
  }
  KMeansConfig config;
  config.clusters = 4;
  config.balanced = true;
  const KMeansResult r = kmeans(pts, 100, 2, config);
  for (std::uint32_t size : r.sizes) EXPECT_LE(size, 25u);
}

TEST(KMeans, SizesSumToCount) {
  util::Rng rng(13);
  const std::vector<double> pts = three_blobs(20, rng);
  KMeansConfig config;
  config.clusters = 5;
  const KMeansResult r = kmeans(pts, 60, 2, config);
  std::size_t total = 0;
  for (std::uint32_t s : r.sizes) total += s;
  EXPECT_EQ(total, 60u);
}

TEST(KMeans, KEqualsCountGivesSingletons) {
  const std::vector<double> pts{0.0, 0.0, 5.0, 5.0, 9.0, 1.0};
  KMeansConfig config;
  config.clusters = 3;
  const KMeansResult r = kmeans(pts, 3, 2, config);
  std::set<std::uint32_t> labels(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, ValidatesArguments) {
  const std::vector<double> pts{0.0, 1.0};
  KMeansConfig config;
  config.clusters = 3;
  EXPECT_THROW(kmeans(pts, 2, 1, config), bd::CheckError);  // k > count
  EXPECT_THROW(kmeans(pts, 3, 1, config), bd::CheckError);  // size mismatch
}

TEST(KMeans, MembersByClusterPreservesOrder) {
  KMeansResult r;
  r.assignment = {1, 0, 1, 0, 1};
  r.sizes = {2, 3};
  const auto members = members_by_cluster(r, 2);
  EXPECT_EQ(members[0], (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(members[1], (std::vector<std::uint32_t>{0, 2, 4}));
}

TEST(AssignBalanced, NearestWhenUnconstrained) {
  const std::vector<double> pts{0.0, 1.0, 9.0, 10.0};
  const std::vector<double> centroids{0.5, 9.5};
  const auto a = assign_balanced(pts, 4, 1, centroids, 2, 0);
  EXPECT_EQ(a, (std::vector<std::uint32_t>{0, 0, 1, 1}));
}

TEST(AssignBalanced, CapacityForcesSpill) {
  // All four points nearest centroid 0, but capacity 2 forces two of them
  // (the least-urgent) to centroid 1.
  const std::vector<double> pts{0.0, 0.1, 0.2, 0.3};
  const std::vector<double> centroids{0.0, 5.0};
  const auto a = assign_balanced(pts, 4, 1, centroids, 2, 2);
  int to_zero = 0;
  for (auto c : a) {
    if (c == 0) ++to_zero;
  }
  EXPECT_EQ(to_zero, 2);
}

TEST(AssignBalanced, ImpossibleCapacityThrows) {
  const std::vector<double> pts{0.0, 1.0, 2.0};
  const std::vector<double> centroids{0.0};
  EXPECT_THROW(assign_balanced(pts, 3, 1, centroids, 1, 2), bd::CheckError);
}

// ---------------------------------------------------------------------------
// Pruned Lloyd engine (triangle-inequality bounds)
// ---------------------------------------------------------------------------

/// Mixed data: blobs plus uniform background, the shape that exercises
/// both heavy pruning (stable interior points) and bound invalidation
/// (points near cluster boundaries).
std::vector<double> mixed_points(std::size_t n, std::size_t dim,
                                 util::Rng& rng) {
  std::vector<double> pts(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const double offset = (i % 3) * 4.0;
    for (std::size_t d = 0; d < dim; ++d) {
      pts[i * dim + d] = (i % 7 == 0) ? rng.uniform() * 12.0
                                      : offset + rng.normal(0.0, 0.8);
    }
  }
  return pts;
}

TEST(KMeansPruned, BitwiseIdenticalToExact) {
  // The pruned engine must be indistinguishable from the exact engine —
  // not approximately: bit-for-bit, across seeds, dimensions and cluster
  // counts, including iteration counts (same convergence decisions).
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    for (std::size_t dim : {1u, 2u, 5u}) {
      for (std::size_t k : {1u, 3u, 8u}) {
        util::Rng rng(seed * 131 + dim);
        const std::size_t n = 300;
        const std::vector<double> pts = mixed_points(n, dim, rng);
        KMeansConfig exact;
        exact.clusters = k;
        exact.seed = seed;
        exact.max_iterations = 20;
        KMeansConfig pruned = exact;
        pruned.pruned = true;
        const KMeansResult a = kmeans(pts, n, dim, exact);
        const KMeansResult b = kmeans(pts, n, dim, pruned);
        const auto ctx = [&] {
          return ::testing::Message()
                 << "seed=" << seed << " dim=" << dim << " k=" << k;
        };
        EXPECT_EQ(a.assignment, b.assignment) << ctx();
        EXPECT_EQ(a.centroids, b.centroids) << ctx();
        EXPECT_EQ(a.sizes, b.sizes) << ctx();
        EXPECT_EQ(a.inertia, b.inertia) << ctx();
        EXPECT_EQ(a.iterations, b.iterations) << ctx();
      }
    }
  }
}

TEST(KMeansPruned, ActuallyPrunesAndCountsDistances) {
  util::Rng rng(3);
  const std::size_t n = 600;
  const std::vector<double> pts = mixed_points(n, 2, rng);
  util::telemetry::MetricsRegistry local;
  std::uint64_t pruned_d = 0;
  std::uint64_t full_d = 0;
  {
    util::telemetry::TelemetryScope scope(&local, nullptr);
    KMeansConfig config;
    config.clusters = 6;
    config.pruned = true;
    config.max_iterations = 25;
    kmeans(pts, n, 2, config);
    const auto snap = local.snapshot();
    pruned_d = snap.counters.at("kmeans.pruned_distances");
    full_d = snap.counters.at("kmeans.full_distances");
  }
  // Separated blobs converge with most interior points pruned after the
  // first pass; both counters must be live.
  EXPECT_GT(pruned_d, 0u);
  EXPECT_GT(full_d, 0u);
}

// ---------------------------------------------------------------------------
// Weighted k-means
// ---------------------------------------------------------------------------

TEST(KMeansWeighted, WeightsPullTheCentroid) {
  // One cluster, two points: the centroid is the weighted mean.
  const std::vector<double> pts{0.0, 10.0};
  const std::vector<double> weights{1.0, 9.0};
  const std::vector<double> init{5.0};
  KMeansConfig config;
  config.clusters = 1;
  const KMeansResult r = kmeans_weighted(pts, 2, 1, weights, init, config);
  EXPECT_DOUBLE_EQ(r.centroids[0], 9.0);
}

TEST(KMeansWeighted, UniformWeightsMatchUnweighted) {
  util::Rng rng(17);
  const std::size_t n = 120;
  const std::vector<double> pts = mixed_points(n, 2, rng);
  const std::vector<double> init{0.0, 0.0, 4.0, 4.0, 8.0, 8.0};
  KMeansConfig config;
  config.clusters = 3;
  const KMeansResult plain = kmeans_weighted(pts, n, 2, {}, init, config);
  const std::vector<double> weights(n, 3.0);
  const KMeansResult scaled = kmeans_weighted(pts, n, 2, weights, init, config);
  // Constant weights cancel out of the centroid update; the objective is
  // scaled by the constant.
  EXPECT_EQ(plain.assignment, scaled.assignment);
  for (std::size_t i = 0; i < plain.centroids.size(); ++i) {
    EXPECT_NEAR(plain.centroids[i], scaled.centroids[i], 1e-9) << i;
  }
  EXPECT_NEAR(scaled.inertia, 3.0 * plain.inertia,
              1e-9 * (1.0 + plain.inertia));
}

TEST(KMeansWeighted, WarmStartSkipsSeeding) {
  // Warm-started runs must not consume RNG draws: two different seeds with
  // the same initial centroids produce identical results.
  util::Rng rng(23);
  const std::size_t n = 90;
  const std::vector<double> pts = mixed_points(n, 2, rng);
  const std::vector<double> init{0.0, 0.0, 4.0, 4.0};
  KMeansConfig a;
  a.clusters = 2;
  a.seed = 1;
  KMeansConfig b = a;
  b.seed = 999;
  const KMeansResult ra = kmeans_weighted(pts, n, 2, {}, init, a);
  const KMeansResult rb = kmeans_weighted(pts, n, 2, {}, init, b);
  EXPECT_EQ(ra.assignment, rb.assignment);
  EXPECT_EQ(ra.centroids, rb.centroids);
  EXPECT_EQ(ra.inertia, rb.inertia);
}

TEST(KMeansWeighted, ValidatesArguments) {
  const std::vector<double> pts{0.0, 1.0, 2.0, 3.0};
  KMeansConfig config;
  config.clusters = 2;
  // Wrong weight count.
  EXPECT_THROW(kmeans_weighted(pts, 4, 1, std::vector<double>{1.0}, {},
                               config),
               bd::CheckError);
  // Non-positive weight.
  EXPECT_THROW(kmeans_weighted(pts, 4, 1,
                               std::vector<double>{1.0, 1.0, 0.0, 1.0}, {},
                               config),
               bd::CheckError);
  // Wrong warm-start shape.
  EXPECT_THROW(kmeans_weighted(pts, 4, 1, {}, std::vector<double>{1.0},
                               config),
               bd::CheckError);
  // Balanced mode rejects weights and pruning.
  KMeansConfig balanced = config;
  balanced.balanced = true;
  EXPECT_THROW(kmeans_weighted(pts, 4, 1,
                               std::vector<double>{1.0, 1.0, 1.0, 1.0}, {},
                               balanced),
               bd::CheckError);
  balanced.pruned = true;
  EXPECT_THROW(kmeans_weighted(pts, 4, 1, {}, {}, balanced), bd::CheckError);
}

TEST(KMeans, EmptyClusterReseedPicksDistinctPoints) {
  // Seed three centroids far from every point: all points go to centroid
  // 0, clusters 1-3 come up empty and must re-seed from three *distinct*
  // farthest points (the old code could hand two empties the same point).
  std::vector<double> pts;
  for (int i = 0; i < 8; ++i) pts.push_back(static_cast<double>(i));
  const std::vector<double> init{3.5, 1000.0, 2000.0, 3000.0};
  KMeansConfig config;
  config.clusters = 4;
  config.max_iterations = 1;
  const KMeansResult r = kmeans_weighted(pts, 8, 1, {}, init, config);
  const std::set<double> reseeded{r.centroids[1], r.centroids[2],
                                  r.centroids[3]};
  EXPECT_EQ(reseeded.size(), 3u);
  for (const double c : reseeded) {
    EXPECT_NE(std::find(pts.begin(), pts.end(), c), pts.end()) << c;
  }
}

}  // namespace
}  // namespace bd::ml
