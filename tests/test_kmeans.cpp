/// Tests for k-means clustering (RP-CLUSTERING's engine).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ml/kmeans.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bd::ml {
namespace {

/// Three well-separated 2-D blobs.
std::vector<double> three_blobs(std::size_t per_blob, util::Rng& rng) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  std::vector<double> pts;
  for (int b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      pts.push_back(centers[b][0] + rng.normal(0.0, 0.5));
      pts.push_back(centers[b][1] + rng.normal(0.0, 0.5));
    }
  }
  return pts;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  util::Rng rng(5);
  const std::vector<double> pts = three_blobs(50, rng);
  KMeansConfig config;
  config.clusters = 3;
  const KMeansResult result = kmeans(pts, 150, 2, config);
  // Each blob maps to one cluster: members of a blob share assignment.
  for (int b = 0; b < 3; ++b) {
    const std::uint32_t label = result.assignment[static_cast<std::size_t>(b) * 50];
    int agree = 0;
    for (int i = 0; i < 50; ++i) {
      if (result.assignment[static_cast<std::size_t>(b) * 50 +
                            static_cast<std::size_t>(i)] == label) {
        ++agree;
      }
    }
    EXPECT_GE(agree, 49) << "blob " << b;
  }
  // Distinct blobs get distinct labels.
  std::set<std::uint32_t> labels;
  for (int b = 0; b < 3; ++b) labels.insert(result.assignment[static_cast<std::size_t>(b) * 50]);
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  util::Rng rng(7);
  const std::vector<double> pts = three_blobs(40, rng);
  double prev = 1e300;
  for (std::size_t k : {1, 2, 3, 6}) {
    KMeansConfig config;
    config.clusters = k;
    const KMeansResult r = kmeans(pts, 120, 2, config);
    EXPECT_LE(r.inertia, prev * 1.0001) << "k=" << k;
    prev = r.inertia;
  }
}

TEST(KMeans, DeterministicForSeed) {
  util::Rng rng(9);
  const std::vector<double> pts = three_blobs(30, rng);
  KMeansConfig config;
  config.clusters = 4;
  const KMeansResult a = kmeans(pts, 90, 2, config);
  const KMeansResult b = kmeans(pts, 90, 2, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeans, BalancedCapsClusterSizes) {
  util::Rng rng(11);
  // Heavily imbalanced data: one dense blob, few outliers.
  std::vector<double> pts;
  for (int i = 0; i < 90; ++i) {
    pts.push_back(rng.normal(0.0, 0.1));
    pts.push_back(rng.normal(0.0, 0.1));
  }
  for (int i = 0; i < 10; ++i) {
    pts.push_back(100.0 + rng.normal(0.0, 0.1));
    pts.push_back(rng.normal(0.0, 0.1));
  }
  KMeansConfig config;
  config.clusters = 4;
  config.balanced = true;
  const KMeansResult r = kmeans(pts, 100, 2, config);
  for (std::uint32_t size : r.sizes) EXPECT_LE(size, 25u);
}

TEST(KMeans, SizesSumToCount) {
  util::Rng rng(13);
  const std::vector<double> pts = three_blobs(20, rng);
  KMeansConfig config;
  config.clusters = 5;
  const KMeansResult r = kmeans(pts, 60, 2, config);
  std::size_t total = 0;
  for (std::uint32_t s : r.sizes) total += s;
  EXPECT_EQ(total, 60u);
}

TEST(KMeans, KEqualsCountGivesSingletons) {
  const std::vector<double> pts{0.0, 0.0, 5.0, 5.0, 9.0, 1.0};
  KMeansConfig config;
  config.clusters = 3;
  const KMeansResult r = kmeans(pts, 3, 2, config);
  std::set<std::uint32_t> labels(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, ValidatesArguments) {
  const std::vector<double> pts{0.0, 1.0};
  KMeansConfig config;
  config.clusters = 3;
  EXPECT_THROW(kmeans(pts, 2, 1, config), bd::CheckError);  // k > count
  EXPECT_THROW(kmeans(pts, 3, 1, config), bd::CheckError);  // size mismatch
}

TEST(KMeans, MembersByClusterPreservesOrder) {
  KMeansResult r;
  r.assignment = {1, 0, 1, 0, 1};
  r.sizes = {2, 3};
  const auto members = members_by_cluster(r, 2);
  EXPECT_EQ(members[0], (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(members[1], (std::vector<std::uint32_t>{0, 2, 4}));
}

TEST(AssignBalanced, NearestWhenUnconstrained) {
  const std::vector<double> pts{0.0, 1.0, 9.0, 10.0};
  const std::vector<double> centroids{0.5, 9.5};
  const auto a = assign_balanced(pts, 4, 1, centroids, 2, 0);
  EXPECT_EQ(a, (std::vector<std::uint32_t>{0, 0, 1, 1}));
}

TEST(AssignBalanced, CapacityForcesSpill) {
  // All four points nearest centroid 0, but capacity 2 forces two of them
  // (the least-urgent) to centroid 1.
  const std::vector<double> pts{0.0, 0.1, 0.2, 0.3};
  const std::vector<double> centroids{0.0, 5.0};
  const auto a = assign_balanced(pts, 4, 1, centroids, 2, 2);
  int to_zero = 0;
  for (auto c : a) {
    if (c == 0) ++to_zero;
  }
  EXPECT_EQ(to_zero, 2);
}

TEST(AssignBalanced, ImpossibleCapacityThrows) {
  const std::vector<double> pts{0.0, 1.0, 2.0};
  const std::vector<double> centroids{0.0};
  EXPECT_THROW(assign_balanced(pts, 3, 1, centroids, 1, 2), bd::CheckError);
}

}  // namespace
}  // namespace bd::ml
