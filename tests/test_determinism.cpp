/// The executor determinism contract: simt::launch and the solvers built
/// on it must produce bit-for-bit identical results for any thread count
/// (BD_NUM_THREADS=1 vs 8 here). Divergence/coalescing counters are summed
/// per warp in the parallel pass; the cache replay is serial in fixed
/// SM-major order; kernels accumulate per-item partials reduced serially.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/fleet.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "core/solver_scratch.hpp"
#include "simt/cache.hpp"
#include "simt/device.hpp"
#include "simt/executor.hpp"
#include "simt/trace.hpp"
#include "simt/warp.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"
#include "util/serialize.hpp"
#include "util/simd.hpp"
#include "util/telemetry.hpp"

namespace bd {
namespace {

/// Bit-for-bit comparison of every KernelMetrics field the paper reports.
void expect_identical(const simt::KernelMetrics& a,
                      const simt::KernelMetrics& b) {
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.warp_instructions, b.warp_instructions);
  EXPECT_EQ(a.active_lane_slots, b.active_lane_slots);
  EXPECT_EQ(a.lane_slots, b.lane_slots);
  EXPECT_EQ(a.branch_events, b.branch_events);
  EXPECT_EQ(a.divergent_branches, b.divergent_branches);
  EXPECT_EQ(a.load_instructions, b.load_instructions);
  EXPECT_EQ(a.bytes_requested, b.bytes_requested);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_EQ(a.l1_transactions, b.l1_transactions);
  EXPECT_EQ(a.l1.hits, b.l1.hits);
  EXPECT_EQ(a.l1.misses, b.l1.misses);
  EXPECT_EQ(a.l2.hits, b.l2.hits);
  EXPECT_EQ(a.l2.misses, b.l2.misses);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
  // Exact equality on purpose: the replay and time model must see the same
  // counters in the same order regardless of threading.
  EXPECT_EQ(a.modeled_seconds, b.modeled_seconds);
  EXPECT_EQ(a.warp_execution_efficiency(), b.warp_execution_efficiency());
  EXPECT_EQ(a.l1_hit_rate(), b.l1_hit_rate());
}

simt::KernelMetrics run_synthetic_launch() {
  const simt::DeviceSpec spec = simt::tesla_k40();
  static std::vector<double> data(1 << 16, 1.0);
  constexpr std::uint32_t kLoad = simt::site_id("determinism/load");
  constexpr std::uint32_t kLoop = simt::site_id("determinism/loop");
  constexpr std::uint32_t kBranch = simt::site_id("determinism/branch");
  return simt::launch(
      spec, simt::LaunchConfig{64, 128},
      [&](const simt::ThreadCtx& ctx, simt::LaneProbe& probe) {
        // Scattered loads, data-dependent trips and branches: exercises
        // coalescing, divergence accounting and both cache levels.
        const std::size_t base = (ctx.global_id * 193) % (data.size() - 64);
        probe.load(kLoad, &data[base], 8);
        probe.load(kLoad, &data[(base * 7) % (data.size() - 8)], 8);
        probe.loop_trip(kLoop, 1 + ctx.thread_id % 17);
        probe.branch(kBranch, (ctx.global_id % 3) == 0);
        probe.count_flops(10 + ctx.thread_id % 5);
      });
}

TEST(Determinism, ExecutorMetricsIdenticalAcrossThreadCounts) {
  util::ThreadPool::set_global_threads(1);
  const simt::KernelMetrics serial = run_synthetic_launch();
  util::ThreadPool::set_global_threads(8);
  const simt::KernelMetrics parallel = run_synthetic_launch();
  util::ThreadPool::set_global_threads(0);
  expect_identical(serial, parallel);
}

struct SolverRun {
  std::vector<double> values;
  std::vector<double> errors;
  std::vector<double> observed;
  simt::KernelMetrics metrics;
  std::uint64_t fallback_items = 0;
  std::uint64_t kernel_intervals = 0;
};

/// One fixture shared by both runs: recorded load addresses come from the
/// history grids, so the cache replay only matches bit-for-bit when both
/// runs sample the *same* allocations. reset_history() rewinds the ring
/// buffer content in place (no reallocation of the grid storage).
testing::ProblemFixture& shared_fixture() {
  static testing::ProblemFixture fixture(16, 1e-6, 12);
  return fixture;
}

void reset_history(testing::ProblemFixture& fixture) {
  beam::Grid2D rho(fixture.spec), grad(fixture.spec);
  for (std::uint32_t iy = 0; iy < fixture.spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < fixture.spec.nx; ++ix) {
      const double x = fixture.spec.x_at(ix);
      const double y = fixture.spec.y_at(iy);
      rho.at(ix, iy) = beam::gaussian_pdf(x, fixture.params.sigma_s) *
                       beam::gaussian_pdf(y, fixture.params.sigma_y);
      grad.at(ix, iy) =
          beam::gaussian_pdf_prime(x, fixture.params.sigma_s) *
          beam::gaussian_pdf(y, fixture.params.sigma_y);
    }
  }
  fixture.history->fill_all(100, rho, grad);
  fixture.problem.step = 100;
}

/// Three Predictive-RP steps (bootstrap + 2 predictive: forecast,
/// clustering, merged kernel, adaptive fallback, online learning).
SolverRun run_predictive() {
  testing::ProblemFixture& fixture = shared_fixture();
  reset_history(fixture);
  core::PredictiveSolver solver(simt::tesla_k40(), {});
  core::SolveResult last;
  for (int step = 0; step < 3; ++step) {
    last = solver.solve(fixture.problem);
    fixture.advance();
  }
  SolverRun run;
  run.values.assign(last.values.data().begin(), last.values.data().end());
  run.errors.assign(last.errors.data().begin(), last.errors.data().end());
  run.observed.assign(last.observed.flat().begin(),
                      last.observed.flat().end());
  run.metrics = last.metrics;
  run.fallback_items = last.fallback_items;
  run.kernel_intervals = last.kernel_intervals;
  return run;
}

TEST(Determinism, PredictiveSolverBitwiseIdenticalAcrossThreadCounts) {
  util::ThreadPool::set_global_threads(1);
  const SolverRun serial = run_predictive();
  util::ThreadPool::set_global_threads(8);
  const SolverRun parallel = run_predictive();
  util::ThreadPool::set_global_threads(0);

  expect_identical(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.fallback_items, parallel.fallback_items);
  EXPECT_EQ(serial.kernel_intervals, parallel.kernel_intervals);

  ASSERT_EQ(serial.values.size(), parallel.values.size());
  for (std::size_t i = 0; i < serial.values.size(); ++i) {
    ASSERT_EQ(serial.values[i], parallel.values[i]) << "point " << i;
    ASSERT_EQ(serial.errors[i], parallel.errors[i]) << "point " << i;
  }
  ASSERT_EQ(serial.observed.size(), parallel.observed.size());
  for (std::size_t i = 0; i < serial.observed.size(); ++i) {
    ASSERT_EQ(serial.observed[i], parallel.observed[i]) << "entry " << i;
  }
}

TEST(Determinism, RepeatedParallelRunsIdentical) {
  util::ThreadPool::set_global_threads(8);
  const simt::KernelMetrics a = run_synthetic_launch();
  const simt::KernelMetrics b = run_synthetic_launch();
  util::ThreadPool::set_global_threads(0);
  expect_identical(a, b);
}

TEST(Determinism, CheckpointRoundTripBitwiseIdentical) {
  // Straight run of 2N steps vs checkpoint-at-N + in-place resume: the
  // second N steps must match bit-for-bit, *including* the SIMT cache
  // metrics. The restore goes into the same Simulation object because the
  // cache replay records actual history-buffer addresses — GridHistory::
  // load copies into the existing allocation, so a restored in-place run
  // replays the exact memory behaviour. (Cross-object restores can only
  // promise identical physics; see test_checkpoint.cpp.)
  const std::string path = ::testing::TempDir() + "bd_determinism_ckpt.bin";
  core::SimConfig config;
  config.particles = 4000;
  config.nx = 16;
  config.ny = 16;
  config.tolerance = 1e-5;
  config.rigid = false;

  core::Simulation sim(
      config, std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
  sim.initialize();
  sim.run(2);
  core::save_checkpoint(sim, path);
  const std::vector<core::StepStats> straight = sim.run(2);

  core::restore_checkpoint(sim, path);
  EXPECT_EQ(sim.current_step(), 2);
  const std::vector<core::StepStats> resumed = sim.run(2);
  std::remove(path.c_str());

  ASSERT_EQ(straight.size(), resumed.size());
  for (std::size_t k = 0; k < straight.size(); ++k) {
    const core::SolveResult& a = straight[k].longitudinal;
    const core::SolveResult& b = resumed[k].longitudinal;
    expect_identical(a.metrics, b.metrics);
    EXPECT_EQ(a.fallback_items, b.fallback_items);
    EXPECT_EQ(a.kernel_intervals, b.kernel_intervals);
    ASSERT_EQ(a.values.data().size(), b.values.data().size());
    for (std::size_t i = 0; i < a.values.data().size(); ++i) {
      ASSERT_EQ(a.values.data()[i], b.values.data()[i])
          << "step " << k << " node " << i;
      ASSERT_EQ(a.errors.data()[i], b.errors.data()[i])
          << "step " << k << " node " << i;
    }
    ASSERT_EQ(a.observed.flat().size(), b.observed.flat().size());
    for (std::size_t i = 0; i < a.observed.flat().size(); ++i) {
      ASSERT_EQ(a.observed.flat()[i], b.observed.flat()[i])
          << "step " << k << " entry " << i;
    }
  }
}

TEST(Determinism, WarmStartCacheSurvivesSolverStateRoundTrip) {
  // The warm-start centroid cache is part of the predictive solver's
  // learned state: a solver restored from save_state must cluster the
  // next step from the same cached seeds and produce bit-identical
  // physics. Without the cache in the payload the restored solver would
  // re-seed k-means++ cold and silently diverge.
  testing::ProblemFixture& fixture = shared_fixture();
  reset_history(fixture);
  core::PredictiveSolver solver(simt::tesla_k40(), {});
  for (int step = 0; step < 3; ++step) {
    solver.solve(fixture.problem);
    fixture.advance();
  }

  util::BinaryWriter snapshot;
  solver.save_state(snapshot);

  core::PredictiveSolver restored(simt::tesla_k40(), {});
  util::BinaryReader in(snapshot.payload());
  restored.load_state(in);
  EXPECT_TRUE(in.done());

  // Cross-object restore promises identical physics (cache *metrics* are
  // address-sensitive; the in-place variant above covers those).
  const core::SolveResult a = solver.solve(fixture.problem);
  const core::SolveResult b = restored.solve(fixture.problem);
  EXPECT_EQ(a.fallback_items, b.fallback_items);
  EXPECT_EQ(a.kernel_intervals, b.kernel_intervals);
  ASSERT_EQ(a.values.data().size(), b.values.data().size());
  for (std::size_t i = 0; i < a.values.data().size(); ++i) {
    ASSERT_EQ(a.values.data()[i], b.values.data()[i]) << "node " << i;
    ASSERT_EQ(a.errors.data()[i], b.errors.data()[i]) << "node " << i;
  }
}

/// Per-SM warp streams built from synthetic LaneTraces through the real
/// analyzer — the input shape of executor pass 2.
std::vector<std::vector<simt::WarpReplay>> synthetic_sm_streams(
    const simt::DeviceSpec& spec, std::size_t warps_per_sm,
    simt::KernelMetrics& analysis) {
  static std::vector<double> data(1 << 15, 1.0);
  constexpr std::uint32_t kLoad = simt::site_id("determinism/shard-load");
  std::vector<std::vector<simt::WarpReplay>> streams(spec.num_sms);
  std::size_t seq = 0;
  for (std::uint32_t sm = 0; sm < spec.num_sms; ++sm) {
    for (std::size_t w = 0; w < warps_per_sm; ++w) {
      std::vector<simt::LaneTrace> traces(spec.warp_size);
      std::vector<const simt::LaneTrace*> warp;
      for (std::uint32_t lane = 0; lane < spec.warp_size; ++lane) {
        simt::LaneTrace& t = traces[lane];
        // A strided sweep plus a scattered access per lane: L1 hits within
        // a warp, misses across warps, real L2 sharing across SMs.
        const std::size_t base = (seq * 131 + lane * 7) % (data.size() - 64);
        t.load(kLoad, &data[base], 8);
        t.load(kLoad, &data[(base * 13) % (data.size() - 8)], 8);
        warp.push_back(&t);
        ++seq;
      }
      streams[sm].push_back(
          simt::analyze_warp_groups(warp, spec, analysis));
    }
  }
  return streams;
}

/// Cache counters of the serial reference: per-SM L1 + shared L2 replayed
/// SM-major through replay_interleaved — the pre-sharding executor.
simt::KernelMetrics serial_replay(
    const simt::DeviceSpec& spec,
    std::vector<std::vector<simt::WarpReplay>>& streams) {
  simt::KernelMetrics out;
  simt::SetAssocCache l2(spec.l2_bytes, spec.l2_line_bytes, spec.l2_ways);
  for (std::uint32_t sm = 0; sm < spec.num_sms; ++sm) {
    simt::SetAssocCache l1(spec.l1_bytes, spec.l1_line_bytes, spec.l1_ways);
    simt::replay_interleaved(streams[sm], spec, l1, l2, out);
  }
  return out;
}

/// The sharded composition simt::launch uses: parallel per-SM L1 stage
/// recording miss lines, then the serial SM-major L2 merge.
simt::KernelMetrics sharded_replay(
    const simt::DeviceSpec& spec,
    std::vector<std::vector<simt::WarpReplay>>& streams) {
  struct Shard {
    simt::KernelMetrics partial;
    std::vector<std::uint64_t> l2_misses;
  };
  std::vector<Shard> shards(spec.num_sms);
  util::parallel_for(0, spec.num_sms, [&](std::size_t sm) {
    simt::SetAssocCache l1(spec.l1_bytes, spec.l1_line_bytes, spec.l1_ways);
    simt::replay_interleaved_l1(streams[sm], spec, l1, shards[sm].partial,
                                shards[sm].l2_misses);
  });
  simt::KernelMetrics out;
  simt::SetAssocCache l2(spec.l2_bytes, spec.l2_line_bytes, spec.l2_ways);
  for (std::uint32_t sm = 0; sm < spec.num_sms; ++sm) {
    out += shards[sm].partial;
    simt::replay_l2_lines(shards[sm].l2_misses, spec, l2, out);
  }
  return out;
}

TEST(Determinism, ShardedReplayMatchesSerialReference) {
  // Sharding moves only *where* each L1 replay runs; the recorded miss
  // streams fed SM-major through the L2 must reproduce the serial
  // executor's every cache transition — at any pool width.
  const simt::DeviceSpec spec = simt::tesla_k40();
  simt::KernelMetrics analysis;
  auto streams = synthetic_sm_streams(spec, 6, analysis);
  const simt::KernelMetrics serial = serial_replay(spec, streams);
  ASSERT_GT(serial.l1.misses, 0u);
  ASSERT_GT(serial.l2.hits + serial.l2.misses, 0u);

  for (unsigned threads : {1u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    const simt::KernelMetrics sharded = sharded_replay(spec, streams);
    EXPECT_EQ(sharded.l1.hits, serial.l1.hits) << threads << " threads";
    EXPECT_EQ(sharded.l1.misses, serial.l1.misses) << threads << " threads";
    EXPECT_EQ(sharded.l2.hits, serial.l2.hits) << threads << " threads";
    EXPECT_EQ(sharded.l2.misses, serial.l2.misses) << threads << " threads";
    EXPECT_EQ(sharded.dram_bytes, serial.dram_bytes) << threads
                                                     << " threads";
  }
  util::ThreadPool::set_global_threads(0);
}

TEST(Determinism, CheckpointRoundTripThroughBatchedPath) {
  // A checkpoint written while the integrand engine dispatched scalar must
  // resume bit-identically under the SIMD dispatch (and vice versa): the
  // dispatch level is execution strategy, not state. On hosts without AVX2
  // both halves run scalar and this degenerates to the plain round trip.
  const std::string path = ::testing::TempDir() + "bd_simd_ckpt.bin";
  core::SimConfig config;
  config.particles = 4000;
  config.nx = 16;
  config.ny = 16;
  config.tolerance = 1e-5;
  config.rigid = false;

  core::Simulation sim(
      config, std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
  sim.initialize();
  sim.run(2);
  core::save_checkpoint(sim, path);

  simd::override_level(simd::Level::kScalar);
  const std::vector<core::StepStats> scalar_run = sim.run(2);
  simd::reset_level();

  core::restore_checkpoint(sim, path);
  EXPECT_EQ(sim.current_step(), 2);
  const std::vector<core::StepStats> simd_run = sim.run(2);
  std::remove(path.c_str());

  ASSERT_EQ(scalar_run.size(), simd_run.size());
  for (std::size_t k = 0; k < scalar_run.size(); ++k) {
    const core::SolveResult& a = scalar_run[k].longitudinal;
    const core::SolveResult& b = simd_run[k].longitudinal;
    expect_identical(a.metrics, b.metrics);
    EXPECT_EQ(a.fallback_items, b.fallback_items);
    EXPECT_EQ(a.kernel_intervals, b.kernel_intervals);
    ASSERT_EQ(a.values.data().size(), b.values.data().size());
    for (std::size_t i = 0; i < a.values.data().size(); ++i) {
      ASSERT_EQ(a.values.data()[i], b.values.data()[i])
          << "step " << k << " node " << i;
      ASSERT_EQ(a.errors.data()[i], b.errors.data()[i])
          << "step " << k << " node " << i;
    }
  }
}

TEST(Determinism, ExternalScratchArenaDoesNotChangeResults) {
  // The step-persistent SolverScratch is capacity-only state: handing the
  // solver a Simulation-owned arena (problem.scratch) instead of letting
  // it lazily create its own must not change a single bit of output.
  const SolverRun owned = run_predictive();

  testing::ProblemFixture& fixture = shared_fixture();
  reset_history(fixture);
  core::SolverScratch external;
  fixture.problem.scratch = &external;
  core::PredictiveSolver solver(simt::tesla_k40(), {});
  core::SolveResult last;
  for (int step = 0; step < 3; ++step) {
    last = solver.solve(fixture.problem);
    fixture.advance();
  }
  fixture.problem.scratch = nullptr;

  expect_identical(owned.metrics, last.metrics);
  EXPECT_EQ(owned.fallback_items, last.fallback_items);
  EXPECT_EQ(owned.kernel_intervals, last.kernel_intervals);
  ASSERT_EQ(owned.values.size(), last.values.data().size());
  for (std::size_t i = 0; i < owned.values.size(); ++i) {
    ASSERT_EQ(owned.values[i], last.values.data()[i]) << "point " << i;
    ASSERT_EQ(owned.errors[i], last.errors.data()[i]) << "point " << i;
  }
}

TEST(Determinism, ScratchStopsGrowingAfterWarmup) {
  // The allocation-free steady-state claim: after a few steps every
  // scratch acquire is a reuse (rp.scratch_grows stays silent), and a
  // checkpoint/restore into the same Simulation keeps the warm capacity.
  util::telemetry::MetricsRegistry& registry =
      util::telemetry::MetricsRegistry::global();
  core::SimConfig config;
  config.particles = 4000;
  config.nx = 16;
  config.ny = 16;
  config.tolerance = 1e-5;
  config.rigid = false;

  core::Simulation sim(
      config, std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
  sim.initialize();
  sim.run(3);  // warm-up: bootstrap + first predictive steps grow buffers

  registry.reset();
  sim.run(3);
  auto steady = registry.snapshot().counters;
  EXPECT_EQ(steady.count("rp.scratch_grows"), 0u)
      << "steady state grew scratch " << steady["rp.scratch_grows"]
      << " times";
  EXPECT_GT(steady["rp.scratch_reuses"], 0u);

  // Checkpoint/restore reuses the Simulation's warm arena.
  const std::string path = ::testing::TempDir() + "bd_scratch_ckpt.bin";
  core::save_checkpoint(sim, path);
  core::restore_checkpoint(sim, path);
  std::remove(path.c_str());
  registry.reset();
  sim.run(2);
  steady = registry.snapshot().counters;
  EXPECT_EQ(steady.count("rp.scratch_grows"), 0u);
  EXPECT_GT(steady["rp.scratch_reuses"], 0u);
  registry.reset();
}

/// Solo reference for FleetMatchesSoloBitwise: run one simulation alone
/// and keep every step's stats.
std::vector<core::StepStats> run_solo(std::uint64_t seed, std::size_t steps) {
  core::SimConfig config;
  config.particles = 4000;
  config.nx = 16;
  config.ny = 16;
  config.tolerance = 1e-5;
  config.rigid = false;
  config.seed = seed;
  core::Simulation sim(
      config, std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
  sim.initialize();
  return sim.run(steps);
}

TEST(Determinism, FleetMatchesSoloBitwise) {
  // The concurrency-corruption regression, end to end: N simulations
  // interleaved through the fleet (job-private telemetry/fault scopes,
  // lanes hopping threads between quanta) must reproduce each solo run
  // bit-for-bit — physics AND SIMT cache metrics — at any thread count.
  // Each quantum runs nested-serially on one pool thread, so PR 2's
  // thread-count determinism carries over to fleet scheduling.
  constexpr std::size_t kSims = 3;
  constexpr std::size_t kSteps = 4;
  const std::uint64_t seeds[kSims] = {1, 2, 3};

  util::ThreadPool::set_global_threads(1);
  std::vector<core::StepStats> solo[kSims];
  for (std::size_t i = 0; i < kSims; ++i) {
    solo[i] = run_solo(seeds[i], kSteps);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    util::ThreadPool::set_global_threads(threads);
    std::vector<core::StepStats> fleet_stats[kSims];
    {
      core::FleetOptions options;
      options.quantum_steps = 2;  // interleave: two scheduling rounds/job
      core::SimulationFleet fleet(options);
      for (std::size_t i = 0; i < kSims; ++i) {
        core::FleetJobSpec spec;
        spec.name = "sim" + std::to_string(i);
        const std::uint64_t seed = seeds[i];
        spec.factory = [seed] {
          core::SimConfig config;
          config.particles = 4000;
          config.nx = 16;
          config.ny = 16;
          config.tolerance = 1e-5;
          config.rigid = false;
          config.seed = seed;
          return std::make_unique<core::Simulation>(
              config,
              std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
        };
        spec.target_steps = kSteps;
        // One lane owns the job per quantum and ownership is handed off
        // under the fleet mutex, so the capture needs no extra locking.
        auto* capture = &fleet_stats[i];
        spec.on_step = [capture](const core::StepStats& stats) {
          capture->push_back(stats);
        };
        fleet.submit(std::move(spec));
      }
      fleet.wait_all();
    }

    for (std::size_t i = 0; i < kSims; ++i) {
      ASSERT_EQ(fleet_stats[i].size(), kSteps)
          << "sim " << i << " at " << threads << " threads";
      for (std::size_t k = 0; k < kSteps; ++k) {
        const core::SolveResult& a = solo[i][k].longitudinal;
        const core::SolveResult& b = fleet_stats[i][k].longitudinal;
        expect_identical(a.metrics, b.metrics);
        EXPECT_EQ(a.fallback_items, b.fallback_items);
        EXPECT_EQ(a.kernel_intervals, b.kernel_intervals);
        ASSERT_EQ(a.values.data().size(), b.values.data().size());
        for (std::size_t n = 0; n < a.values.data().size(); ++n) {
          ASSERT_EQ(a.values.data()[n], b.values.data()[n])
              << "sim " << i << " step " << k << " node " << n << " at "
              << threads << " threads";
          ASSERT_EQ(a.errors.data()[n], b.errors.data()[n])
              << "sim " << i << " step " << k << " node " << n;
        }
        EXPECT_EQ(core::fleet_digest_step(solo[i][k], 0u),
                  core::fleet_digest_step(fleet_stats[i][k], 0u));
      }
    }
  }
  util::ThreadPool::set_global_threads(0);
}

TEST(Determinism, TelemetryCaptureDoesNotPerturbMetrics) {
  // Telemetry is observational only: recording spans must not change a
  // single profiler counter, with or without worker threads.
  util::telemetry::TraceSession& session =
      util::telemetry::TraceSession::global();
  session.stop();
  session.clear();
  util::ThreadPool::set_global_threads(8);
  const simt::KernelMetrics quiet = run_synthetic_launch();

  session.start();
  const simt::KernelMetrics traced = run_synthetic_launch();
  session.stop();
  EXPECT_GT(session.event_count(), 0u);  // capture actually happened
  session.clear();
  util::ThreadPool::set_global_threads(0);

  expect_identical(quiet, traced);
}

}  // namespace
}  // namespace bd
