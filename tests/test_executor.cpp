/// Tests for the SIMT executor: launch geometry, determinism, divergence
/// and cache behaviour of simple synthetic kernels.

#include <gtest/gtest.h>

#include <vector>

#include "simt/executor.hpp"
#include "util/check.hpp"

namespace bd::simt {
namespace {

constexpr std::uint32_t kLoad = site_id("exec/load");
constexpr std::uint32_t kLoop = site_id("exec/loop");

TEST(Executor, RunsEveryThreadExactlyOnce) {
  const DeviceSpec spec = test_device();
  std::vector<int> visits(256, 0);
  launch(spec, LaunchConfig{4, 64}, [&](const ThreadCtx& ctx, LaneProbe&) {
    ++visits[ctx.global_id];
    BD_CHECK(ctx.thread_id < 64);
    BD_CHECK(ctx.block_id < 4);
    BD_CHECK(ctx.global_id == ctx.block_id * 64 + ctx.thread_id);
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Executor, DeterministicMetrics) {
  const DeviceSpec spec = test_device();
  std::vector<double> data(4096, 1.0);
  auto kernel = [&](const ThreadCtx& ctx, LaneProbe& probe) {
    const std::size_t base = (ctx.global_id * 37) % 4000;
    probe.load(kLoad, &data[base], 8);
    probe.count_flops(4);
  };
  const KernelMetrics m1 = launch(spec, LaunchConfig{8, 32}, kernel);
  const KernelMetrics m2 = launch(spec, LaunchConfig{8, 32}, kernel);
  EXPECT_EQ(m1.flops, m2.flops);
  EXPECT_EQ(m1.l1.hits, m2.l1.hits);
  EXPECT_EQ(m1.l2.misses, m2.l2.misses);
  EXPECT_EQ(m1.dram_bytes, m2.dram_bytes);
  EXPECT_DOUBLE_EQ(m1.modeled_seconds, m2.modeled_seconds);
}

TEST(Executor, UniformKernelHasPerfectWarpEfficiency) {
  const DeviceSpec spec = test_device();
  const KernelMetrics m =
      launch(spec, LaunchConfig{2, 64}, [](const ThreadCtx&, LaneProbe& p) {
        p.loop_trip(kLoop, 10);
        p.count_flops(100);
      });
  EXPECT_DOUBLE_EQ(m.warp_execution_efficiency(), 1.0);
  EXPECT_EQ(m.flops, 2u * 64u * 100u);
}

TEST(Executor, DataDependentTripsReduceEfficiency) {
  const DeviceSpec spec = test_device();
  const KernelMetrics m =
      launch(spec, LaunchConfig{2, 64}, [](const ThreadCtx& ctx, LaneProbe& p) {
        p.loop_trip(kLoop, 1 + (ctx.thread_id % 32));  // 1..32 per warp
      });
  // Sum of 1..32 active over 32 iterations of 32 lanes.
  const double expected = (32.0 * 33.0 / 2.0) / (32.0 * 32.0);
  EXPECT_NEAR(m.warp_execution_efficiency(), expected, 1e-12);
}

TEST(Executor, SharedReadsAcrossBlocksHitL2) {
  DeviceSpec spec = test_device();
  spec.num_sms = 1;  // all blocks share one L1 too
  std::vector<double> table(16, 1.0);
  const KernelMetrics m =
      launch(spec, LaunchConfig{8, 32}, [&](const ThreadCtx&, LaneProbe& p) {
        p.load(kLoad, table.data(), 8);
      });
  // One compulsory miss; every other block/warp hits.
  EXPECT_EQ(m.l1.misses, 1u);
  EXPECT_GT(m.l1.hits, 0u);
  EXPECT_EQ(m.dram_bytes, 128u);
}

TEST(Executor, ValidatesLaunchConfig) {
  const DeviceSpec spec = test_device();
  auto noop = [](const ThreadCtx&, LaneProbe&) {};
  EXPECT_THROW(launch(spec, LaunchConfig{0, 32}, noop), CheckError);
  EXPECT_THROW(launch(spec, LaunchConfig{1, 0}, noop), CheckError);
  EXPECT_THROW(launch(spec, LaunchConfig{1, 4096}, noop), CheckError);
}

TEST(Executor, PartialLastWarpAccounted) {
  const DeviceSpec spec = test_device();
  // 40 threads = one full warp + one 8-lane warp.
  const KernelMetrics m =
      launch(spec, LaunchConfig{1, 40}, [](const ThreadCtx&, LaneProbe& p) {
        p.loop_trip(kLoop, 4);
      });
  // Full warp: 4*32 slots active 4*32; partial: 4*32 slots active 4*8.
  EXPECT_EQ(m.lane_slots, 8u * 32u);
  EXPECT_EQ(m.active_lane_slots, 4u * 32u + 4u * 8u);
}

TEST(Executor, TimeModelApplied) {
  const DeviceSpec spec = test_device();
  const KernelMetrics m =
      launch(spec, LaunchConfig{1, 32}, [](const ThreadCtx&, LaneProbe& p) {
        p.count_flops(1000);
      });
  EXPECT_GT(m.modeled_seconds, 0.0);
  EXPECT_GT(m.gflops(), 0.0);
}

TEST(Executor, BlocksRoundRobinOverSms) {
  // Two SMs: blocks 0,2 on SM0 and 1,3 on SM1. Each block reads its own
  // disjoint data; private L1s mean every block's first read misses, and
  // re-reads within the block hit.
  DeviceSpec spec = test_device();
  spec.num_sms = 2;
  std::vector<double> data(4 * 64, 0.0);
  const KernelMetrics m =
      launch(spec, LaunchConfig{4, 32}, [&](const ThreadCtx& ctx, LaneProbe& p) {
        p.load(kLoad, &data[ctx.block_id * 64], 8);
        p.load(kLoad, &data[ctx.block_id * 64], 8);
      });
  EXPECT_EQ(m.l1.misses, 4u);
  EXPECT_EQ(m.l1.hits, 4u);
}

}  // namespace
}  // namespace bd::simt
