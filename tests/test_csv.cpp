/// Tests for the CSV writer.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace bd::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "bd_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.header({"a", "b"});
    csv.cell(1).cell(2.5);
    csv.end_row();
    csv.cell("x").cell(std::int64_t{-7});
    csv.end_row();
    EXPECT_EQ(csv.rows_written(), 2u);
    csv.close();
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2.5\nx,-7\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.cell("has,comma").cell("has\"quote").cell("plain");
    csv.end_row();
    csv.close();
  }
  EXPECT_EQ(read_file(path_), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST_F(CsvTest, DoubleRoundTripPrecision) {
  {
    CsvWriter csv(path_);
    csv.cell(0.1234567890123456789).end_row();
    csv.close();
  }
  const std::string body = read_file(path_);
  EXPECT_NEAR(std::stod(body), 0.1234567890123456789, 1e-16);
}

TEST_F(CsvTest, HeaderAfterRowThrows) {
  CsvWriter csv(path_);
  csv.cell(1).end_row();
  EXPECT_THROW(csv.header({"late"}), CheckError);
}

TEST_F(CsvTest, EmptyRowThrows) {
  CsvWriter csv(path_);
  EXPECT_THROW(csv.end_row(), CheckError);
}

TEST_F(CsvTest, CloseWithPendingCellsThrows) {
  CsvWriter csv(path_);
  csv.cell(1);
  EXPECT_THROW(csv.close(), CheckError);
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), CheckError);
}

}  // namespace
}  // namespace bd::util
