/// Tests for the regression quality metrics.

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/check.hpp"

namespace bd::ml {
namespace {

TEST(MlMetrics, MseKnown) {
  const std::vector<double> p{1.0, 2.0, 3.0};
  const std::vector<double> t{1.0, 0.0, 6.0};
  EXPECT_NEAR(mse(p, t), (0.0 + 4.0 + 9.0) / 3.0, 1e-12);
}

TEST(MlMetrics, MaeKnown) {
  const std::vector<double> p{1.0, -2.0};
  const std::vector<double> t{0.0, 2.0};
  EXPECT_DOUBLE_EQ(mae(p, t), 2.5);
  EXPECT_DOUBLE_EQ(mae({}, {}), 0.0);
}

TEST(MlMetrics, R2PerfectPrediction) {
  const std::vector<double> t{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2_score(t, t), 1.0);
}

TEST(MlMetrics, R2MeanPredictorIsZero) {
  const std::vector<double> t{1.0, 2.0, 3.0};
  const std::vector<double> p{2.0, 2.0, 2.0};
  EXPECT_NEAR(r2_score(p, t), 0.0, 1e-12);
}

TEST(MlMetrics, R2CanBeNegative) {
  const std::vector<double> t{1.0, 2.0, 3.0};
  const std::vector<double> p{3.0, 2.0, 1.0};
  EXPECT_LT(r2_score(p, t), 0.0);
}

TEST(MlMetrics, R2ConstantTruth) {
  const std::vector<double> t{2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(t, t), 1.0);
  EXPECT_DOUBLE_EQ(r2_score(std::vector<double>{1.0, 3.0}, t), 0.0);
}

TEST(MlMetrics, SizeMismatchThrows) {
  EXPECT_THROW(mae(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               bd::CheckError);
  EXPECT_THROW(r2_score(std::vector<double>{}, std::vector<double>{}),
               bd::CheckError);
}

}  // namespace
}  // namespace bd::ml
