/// Integration tests for the three rp-solvers: correctness equivalence,
/// statefulness, and the performance-metric ordering the paper reports.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/heuristic.hpp"
#include "baselines/two_phase.hpp"
#include "core/predictive.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace bd::core {
namespace {

using bd::testing::ProblemFixture;

/// Run `steps` solves of the (stationary) fixture problem, returning the
/// last result.
SolveResult run_steps(RpSolver& solver, ProblemFixture& fixture, int steps) {
  SolveResult last;
  for (int k = 0; k < steps; ++k) {
    if (k > 0) fixture.advance();
    last = solver.solve(fixture.problem);
  }
  return last;
}

class SolverKind : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<RpSolver> make() const {
    const std::string kind = GetParam();
    if (kind == "two-phase") {
      return std::make_unique<baselines::TwoPhaseSolver>(simt::tesla_k40());
    }
    if (kind == "heuristic") {
      return std::make_unique<baselines::HeuristicSolver>(simt::tesla_k40());
    }
    return std::make_unique<PredictiveSolver>(simt::tesla_k40());
  }
};

TEST_P(SolverKind, MatchesAnalyticContinuumForce) {
  ProblemFixture fixture(24, 1e-6);
  auto solver = make();
  const SolveResult result = run_steps(*solver, fixture, 3);
  // Interior nodes: compare against the analytic continuum reference.
  const beam::GridSpec& spec = fixture.spec;
  for (std::uint32_t iy : {spec.ny / 2, spec.ny / 2 + 3}) {
    for (std::uint32_t ix : {spec.nx / 4, spec.nx / 2, 3 * spec.nx / 4}) {
      const double exact = fixture.exact(ix, iy);
      EXPECT_NEAR(result.values.at(ix, iy), exact,
                  std::max(6e-2 * std::abs(exact), 3e-4))
          << GetParam() << " at (" << ix << "," << iy << ")";
    }
  }
}

TEST_P(SolverKind, ErrorEstimateWithinTolerance) {
  ProblemFixture fixture(16, 1e-6);
  auto solver = make();
  const SolveResult result = run_steps(*solver, fixture, 2);
  // Per-point accumulated error estimates stay near τ (each interval is
  // held to a width-proportional share).
  for (double err : result.errors.data()) {
    EXPECT_LE(err, 4e-6);
  }
}

TEST_P(SolverKind, SolversAgreeWithEachOther) {
  ProblemFixture f1(16, 1e-6), f2(16, 1e-6);
  baselines::TwoPhaseSolver reference(simt::tesla_k40());
  auto solver = make();
  const SolveResult a = run_steps(reference, f1, 1);
  const SolveResult b = run_steps(*solver, f2, 3);
  double worst = 0.0;
  for (std::uint32_t iy = 2; iy < 14; ++iy) {
    for (std::uint32_t ix = 2; ix < 14; ++ix) {
      worst = std::max(worst,
                       std::abs(a.values.at(ix, iy) - b.values.at(ix, iy)));
    }
  }
  EXPECT_LT(worst, 5e-5);
}

TEST_P(SolverKind, ObservedPatternsPopulated) {
  ProblemFixture fixture(16, 1e-6);
  auto solver = make();
  const SolveResult result = run_steps(*solver, fixture, 2);
  EXPECT_EQ(result.observed.points(), fixture.problem.num_points());
  double total = 0.0;
  for (double v : result.observed.flat()) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_GT(total, 0.0);
}

TEST_P(SolverKind, ResetClearsState) {
  ProblemFixture fixture(16, 1e-6);
  auto solver = make();
  const SolveResult before = run_steps(*solver, fixture, 3);
  solver->reset();
  fixture.advance();
  const SolveResult after = solver->solve(fixture.problem);
  // After reset the solver is back in bootstrap: same coarse interval
  // count as a fresh two-phase step.
  EXPECT_EQ(after.kernel_intervals,
            fixture.problem.num_points() * fixture.problem.num_subregions);
  (void)before;
}

INSTANTIATE_TEST_SUITE_P(All, SolverKind,
                         ::testing::Values("two-phase", "heuristic",
                                           "predictive"));

TEST(SolverComparison, PaperOrderingOnStationaryWorkload) {
  // The headline shape of Table I: after warm-up, Predictive-RP beats
  // Heuristic-RP beats Two-Phase-RP on warp efficiency, and Predictive
  // has the fewest fallback items.
  ProblemFixture f_two(48, 1e-6), f_heu(48, 1e-6), f_pred(48, 1e-6);
  baselines::TwoPhaseSolver two_phase(simt::tesla_k40());
  baselines::HeuristicSolver heuristic(simt::tesla_k40());
  PredictiveSolver predictive(simt::tesla_k40());

  const SolveResult r_two = run_steps(two_phase, f_two, 4);
  const SolveResult r_heu = run_steps(heuristic, f_heu, 4);
  const SolveResult r_pred = run_steps(predictive, f_pred, 4);

  EXPECT_GT(r_pred.metrics.warp_execution_efficiency(),
            r_heu.metrics.warp_execution_efficiency());
  EXPECT_GT(r_heu.metrics.warp_execution_efficiency(),
            r_two.metrics.warp_execution_efficiency());
  EXPECT_LT(r_pred.fallback_items, r_two.fallback_items);
  // Data-locality ordering. The shared-sample sweep strips duplicate
  // (always-hit) loads from the kernel-heavy predictive profile while
  // seeded fallback roots strip cold (always-miss) loads from the
  // fallback-heavy two-phase profile, so the raw L1 rate is no longer
  // comparable across those two profiles; clustering's reuse claim shows
  // in L1 against the per-point heuristic and in shared-L2 reuse against
  // two-phase.
  EXPECT_GT(r_pred.metrics.l1_hit_rate(), r_heu.metrics.l1_hit_rate());
  EXPECT_GT(r_pred.metrics.l2_hit_rate(), r_two.metrics.l2_hit_rate());
  EXPECT_LT(r_pred.gpu_seconds, r_two.gpu_seconds);
}

TEST(PredictiveSolver, BecomesTrainedAfterBootstrap) {
  ProblemFixture fixture(16, 1e-6);
  PredictiveSolver solver(simt::tesla_k40());
  EXPECT_FALSE(solver.trained());
  solver.solve(fixture.problem);
  EXPECT_TRUE(solver.trained());
}

TEST(PredictiveSolver, ForecastApproximatesObserved) {
  ProblemFixture fixture(24, 1e-6);
  PredictiveSolver solver(simt::tesla_k40());
  SolveResult last;
  for (int k = 0; k < 3; ++k) {
    if (k) fixture.advance();
    last = solver.solve(fixture.problem);
  }
  fixture.advance();
  const PatternField forecast = solver.forecast(fixture.problem);
  // Stationary workload: forecast should be close to the last observation.
  std::vector<double> predicted(forecast.flat().begin(),
                                forecast.flat().end());
  std::vector<double> observed(last.observed.flat().begin(),
                               last.observed.flat().end());
  const double corr = util::correlation(predicted, observed);
  EXPECT_GT(corr, 0.9);
}

TEST(PredictiveSolver, FallbackShrinksAfterLearning) {
  ProblemFixture fixture(24, 1e-6);
  PredictiveSolver solver(simt::tesla_k40());
  const SolveResult bootstrap = solver.solve(fixture.problem);
  fixture.advance();
  SolveResult trained;
  for (int k = 0; k < 3; ++k) {
    trained = solver.solve(fixture.problem);
    fixture.advance();
  }
  EXPECT_LT(trained.fallback_items, bootstrap.fallback_items / 2);
}

TEST(PredictiveSolver, RidgePredictorAlsoWorks) {
  ProblemFixture fixture(16, 1e-6);
  PredictiveOptions options;
  options.predictor = ml::PredictorKind::kRidge;
  PredictiveSolver solver(simt::tesla_k40(), options);
  SolveResult r;
  for (int k = 0; k < 3; ++k) {
    if (k) fixture.advance();
    r = solver.solve(fixture.problem);
  }
  const double exact = fixture.exact(8, 8);
  EXPECT_NEAR(r.values.at(8, 8), exact, std::max(0.12 * std::abs(exact), 4e-4));
}

TEST(PredictiveSolver, AdaptiveTransformWorks) {
  ProblemFixture fixture(16, 1e-6);
  PredictiveOptions options;
  options.transform = PartitionTransform::kAdaptive;
  PredictiveSolver solver(simt::tesla_k40(), options);
  SolveResult r;
  for (int k = 0; k < 3; ++k) {
    if (k) fixture.advance();
    r = solver.solve(fixture.problem);
  }
  const double exact = fixture.exact(8, 8);
  EXPECT_NEAR(r.values.at(8, 8), exact, std::max(0.12 * std::abs(exact), 4e-4));
}

TEST(PredictiveSolver, TimingBreakdownPopulated) {
  ProblemFixture fixture(16, 1e-6);
  PredictiveSolver solver(simt::tesla_k40());
  solver.solve(fixture.problem);
  fixture.advance();
  const SolveResult r = solver.solve(fixture.problem);
  EXPECT_GT(r.gpu_seconds, 0.0);
  EXPECT_GT(r.clustering_seconds, 0.0);
  EXPECT_GE(r.train_seconds, 0.0);
  EXPECT_GT(r.forecast_seconds, 0.0);
  EXPECT_GE(r.overall_seconds(), r.gpu_seconds);
  EXPECT_GT(r.wall_seconds, 0.0);
}

}  // namespace
}  // namespace bd::core
