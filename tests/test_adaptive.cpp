/// Tests for adaptive Simpson quadrature (RP-ADAPTIVEQUADRATURE).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "quad/adaptive.hpp"
#include "quad/partition.hpp"
#include "util/check.hpp"

namespace bd::quad {
namespace {

simt::NullProbe& probe() { return simt::NullProbe::instance(); }

TEST(Adaptive, ConvergesOnSmoothFunction) {
  const FunctionIntegrand f([](double x) { return std::sin(x); });
  const AdaptiveResult r = adaptive_simpson(f, 0.0, M_PI, 1e-10, probe());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.integral, 2.0, 1e-9);
  EXPECT_LE(r.error, 1e-9);
}

TEST(Adaptive, PartitionIsValidAndBracketsInterval) {
  const FunctionIntegrand f([](double x) { return std::exp(-x * x); });
  const AdaptiveResult r = adaptive_simpson(f, -2.0, 3.0, 1e-8, probe());
  ASSERT_GE(r.breakpoints.size(), 2u);
  EXPECT_DOUBLE_EQ(r.breakpoints.front(), -2.0);
  EXPECT_DOUBLE_EQ(r.breakpoints.back(), 3.0);
  EXPECT_TRUE(is_valid_partition(r.breakpoints));
}

TEST(Adaptive, RefinesWhereIntegrandVariesRapidly) {
  // Narrow bump at 0.8: the partition must be denser there than at 0.2.
  const FunctionIntegrand f([](double x) {
    const double z = (x - 0.8) / 0.02;
    return std::exp(-0.5 * z * z);
  });
  const AdaptiveResult r = adaptive_simpson(f, 0.0, 1.0, 1e-10, probe());
  int near_bump = 0, far_from_bump = 0;
  for (std::size_t i = 0; i + 1 < r.breakpoints.size(); ++i) {
    const double mid = 0.5 * (r.breakpoints[i] + r.breakpoints[i + 1]);
    if (std::abs(mid - 0.8) < 0.1) ++near_bump;
    if (std::abs(mid - 0.2) < 0.1) ++far_from_bump;
  }
  EXPECT_GT(near_bump, 4 * std::max(1, far_from_bump));
}

TEST(Adaptive, SingularKernelIntegrates) {
  // The regularized CSR-like kernel (u + u0)^(-1/3).
  const FunctionIntegrand f(
      [](double u) { return std::pow(u + 0.05, -1.0 / 3.0); });
  const AdaptiveResult r = adaptive_simpson(f, 0.0, 1.0, 1e-9, probe());
  const double exact =
      1.5 * (std::pow(1.05, 2.0 / 3.0) - std::pow(0.05, 2.0 / 3.0));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.integral, exact, 1e-7);
}

TEST(Adaptive, NanIntegrandTerminatesWithoutRefining) {
  // A poisoned integrand can never satisfy the error test; the driver must
  // give up on such an interval immediately instead of bisecting it until
  // the interval budget is exhausted (each bisection also grows the
  // breakpoint list, so budget-exhaustion here is also a memory blow-up).
  const FunctionIntegrand f(
      [](double) { return std::numeric_limits<double>::quiet_NaN(); });
  const AdaptiveResult r = adaptive_simpson(f, 0.0, 1.0, 1e-9, probe());
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.breakpoints.size(), 2u);          // no refinement happened
  EXPECT_LT(r.evaluations, 16u);                // one Simpson estimate
  EXPECT_TRUE(std::isnan(r.integral));          // poison stays visible
}

TEST(Adaptive, InfIntegrandTerminatesWithoutRefining) {
  const FunctionIntegrand f(
      [](double) { return std::numeric_limits<double>::infinity(); });
  const AdaptiveResult r = adaptive_simpson(f, 0.0, 1.0, 1e-9, probe());
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.breakpoints.size(), 2u);
}

TEST(Adaptive, DepthLimitMarksNonConverged) {
  // A discontinuity cannot be resolved: expect non-convergence with a
  // small depth budget but a finite answer.
  const FunctionIntegrand f([](double x) { return x < 0.337 ? 0.0 : 1.0; });
  AdaptiveOptions options;
  options.max_depth = 4;
  const AdaptiveResult r =
      adaptive_simpson(f, 0.0, 1.0, 1e-14, probe(), options);
  EXPECT_FALSE(r.converged);
  EXPECT_NEAR(r.integral, 1.0 - 0.337, 0.05);
}

TEST(Adaptive, EmptyIntervalReturnsZero) {
  const FunctionIntegrand f([](double) { return 1.0; });
  const AdaptiveResult r = adaptive_simpson(f, 1.0, 1.0, 1e-8, probe());
  EXPECT_DOUBLE_EQ(r.integral, 0.0);
  EXPECT_TRUE(r.converged);
}

TEST(Adaptive, InvalidArgumentsThrow) {
  const FunctionIntegrand f([](double) { return 1.0; });
  EXPECT_THROW(adaptive_simpson(f, 0.0, 1.0, 0.0, probe()), bd::CheckError);
  EXPECT_THROW(adaptive_simpson(f, 1.0, 0.0, 1e-8, probe()), bd::CheckError);
}

TEST(Adaptive, ReportsControlFlowThroughProbe) {
  simt::CountingProbe counter;
  const FunctionIntegrand f([](double x) { return std::sin(10.0 * x); });
  adaptive_simpson(f, 0.0, 1.0, 1e-8, counter);
  EXPECT_GT(counter.loop_iterations(), 1u);   // worklist trips
  EXPECT_GT(counter.branches(), 0u);          // accept/subdivide branches
}

// Property: tighter tolerances produce finer partitions and smaller errors.
class ToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceSweep, ErrorWithinTolerance) {
  const double tol = GetParam();
  const FunctionIntegrand f([](double x) { return std::cos(5.0 * x) + x; });
  const AdaptiveResult r = adaptive_simpson(f, 0.0, 2.0, tol, probe());
  const double exact = std::sin(10.0) / 5.0 + 2.0;
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.error, tol * 1.0000001);
  EXPECT_NEAR(r.integral, exact, 10.0 * tol);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceSweep,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10));

}  // namespace
}  // namespace bd::quad
