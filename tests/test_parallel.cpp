/// Tests for the util thread pool: coverage, chunking, serial fallback,
/// nesting, and exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace bd::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(10000);
  pool.for_chunks(0, visits.size(), 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  int calls = 0;
  pool.for_chunks(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  pool.for_chunks(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleThreadFallbackIsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.for_chunks(0, 10, 3, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::size_t i = lo; i < hi; ++i) order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);  // serial path preserves index order
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  std::atomic<int> chunks{0};
  pool.for_chunks(100, 1000, 128, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    EXPECT_LE(hi - lo, 128u);
    std::uint64_t s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += i;
    total += s;
    ++chunks;
  });
  std::uint64_t expected = 0;
  for (std::size_t i = 100; i < 1000; ++i) expected += i;
  EXPECT_EQ(total.load(), expected);
  EXPECT_GE(chunks.load(), static_cast<int>((1000 - 100) / 128));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_chunks(0, 1000, 1,
                      [&](std::size_t lo, std::size_t) {
                        if (lo == 17) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // Pool must stay usable after an exception.
  std::atomic<int> count{0};
  pool.for_chunks(0, 100, 10,
                  [&](std::size_t lo, std::size_t hi) {
                    count += static_cast<int>(hi - lo);
                  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedLoopsSerializeWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(32 * 32);
  pool.for_chunks(0, 32, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t outer = lo; outer < hi; ++outer) {
      // Inner loop must run inline on this worker (no pool re-entry).
      pool.for_chunks(0, 32, 4, [&](std::size_t ilo, std::size_t ihi) {
        for (std::size_t inner = ilo; inner < ihi; ++inner) {
          ++visits[outer * 32 + inner];
        }
      });
    }
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, GlobalHelpersCoverRange) {
  ThreadPool::set_global_threads(4);
  std::vector<std::atomic<int>> visits(5000);
  parallel_for(0, visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);

  std::atomic<std::uint64_t> total{0};
  parallel_for_chunked(0, 5000, 0, [&](std::size_t lo, std::size_t hi) {
    std::uint64_t s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += i;
    total += s;
  });
  EXPECT_EQ(total.load(), 5000ull * 4999ull / 2ull);
  ThreadPool::set_global_threads(0);  // back to the configured default
}

TEST(ParallelFor, ConfiguredThreadsReadsEnvironment) {
  ::setenv("BD_NUM_THREADS", "3", 1);
  EXPECT_EQ(configured_threads(), 3u);
  ::setenv("BD_NUM_THREADS", "not-a-number", 1);
  EXPECT_GE(configured_threads(), 1u);  // falls back to hardware
  ::unsetenv("BD_NUM_THREADS");
  EXPECT_GE(configured_threads(), 1u);
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.for_chunks(0, 64, 1, [&](std::size_t lo, std::size_t hi) {
      count += static_cast<int>(hi - lo);
    });
    ASSERT_EQ(count.load(), 64);
  }
}

}  // namespace
}  // namespace bd::util
