/// Tests for ridge regression (the paper's alternative predictor).

#include <gtest/gtest.h>

#include <cmath>

#include "ml/linreg.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bd::ml {
namespace {

TEST(Ridge, RecoversLinearFunction) {
  util::Rng rng(7);
  Dataset d(2, 1);
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.uniform(-2, 2);
    const double x1 = rng.uniform(-2, 2);
    d.add(std::vector<double>{x0, x1},
          std::vector<double>{3.0 * x0 - 2.0 * x1 + 1.0});
  }
  LinRegConfig config;
  config.poly_degree = 1;
  RidgeRegressor model(config);
  model.fit(d);
  for (int q = 0; q < 20; ++q) {
    const double x0 = rng.uniform(-2, 2);
    const double x1 = rng.uniform(-2, 2);
    EXPECT_NEAR(model.predict(std::vector<double>{x0, x1})[0],
                3.0 * x0 - 2.0 * x1 + 1.0, 1e-6);
  }
}

TEST(Ridge, QuadraticExpansionFitsQuadratic) {
  util::Rng rng(11);
  Dataset d(1, 1);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-1, 1);
    d.add(std::vector<double>{x}, std::vector<double>{x * x - 0.5 * x});
  }
  RidgeRegressor model;  // poly_degree = 2 default
  model.fit(d);
  for (double x : {-0.7, -0.2, 0.0, 0.4, 0.9}) {
    EXPECT_NEAR(model.predict(std::vector<double>{x})[0], x * x - 0.5 * x,
                1e-5);
  }
}

TEST(Ridge, LinearModelCannotFitQuadratic) {
  util::Rng rng(13);
  Dataset d(1, 1);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-1, 1);
    d.add(std::vector<double>{x}, std::vector<double>{x * x});
  }
  LinRegConfig config;
  config.poly_degree = 1;
  RidgeRegressor model(config);
  model.fit(d);
  // Best linear fit of x² on [-1,1] is ~1/3; large pointwise error at 0.
  EXPECT_GT(std::abs(model.predict(std::vector<double>{0.0})[0]), 0.1);
}

TEST(Ridge, MultiOutput) {
  util::Rng rng(17);
  Dataset d(1, 3);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(-1, 1);
    d.add(std::vector<double>{x}, std::vector<double>{x, 2 * x, -x + 1});
  }
  LinRegConfig config;
  config.poly_degree = 1;
  RidgeRegressor model(config);
  model.fit(d);
  const auto p = model.predict(std::vector<double>{0.5});
  EXPECT_NEAR(p[0], 0.5, 1e-6);
  EXPECT_NEAR(p[1], 1.0, 1e-6);
  EXPECT_NEAR(p[2], 0.5, 1e-6);
}

TEST(Ridge, RegularizationShrinksIllConditionedFit) {
  // Duplicate (collinear) features: ridge keeps the solution finite.
  Dataset d(2, 1);
  for (int i = 0; i < 20; ++i) {
    const double x = i * 0.1;
    d.add(std::vector<double>{x, x}, std::vector<double>{2 * x});
  }
  LinRegConfig config;
  config.poly_degree = 1;
  config.ridge = 1e-4;
  RidgeRegressor model(config);
  EXPECT_NO_THROW(model.fit(d));
  EXPECT_NEAR(model.predict(std::vector<double>{1.0, 1.0})[0], 2.0, 1e-2);
}

TEST(Ridge, PredictBeforeFitThrows) {
  RidgeRegressor model;
  EXPECT_THROW(model.predict(std::vector<double>{1.0}), bd::CheckError);
}

TEST(Ridge, FitEmptyThrows) {
  RidgeRegressor model;
  EXPECT_THROW(model.fit(Dataset(1, 1)), bd::CheckError);
}

}  // namespace
}  // namespace bd::ml
