/// Tests for the roofline time model.

#include <gtest/gtest.h>

#include "simt/timemodel.hpp"

namespace bd::simt {
namespace {

DeviceSpec k40() { return tesla_k40(); }

TEST(TimeModel, MemoryBoundKernel) {
  KernelMetrics m;
  m.flops = 1'000'000;        // tiny compute
  m.dram_bytes = 200'000'000; // 1ms at 200 GB/s
  m.lane_slots = 32;
  m.active_lane_slots = 32;
  const TimeBreakdown tb = model_time(m, k40());
  EXPECT_TRUE(tb.memory_bound);
  EXPECT_NEAR(tb.memory_seconds, 1e-3, 1e-9);
  EXPECT_DOUBLE_EQ(tb.total_seconds, tb.memory_seconds);
}

TEST(TimeModel, ComputeBoundKernel) {
  KernelMetrics m;
  m.flops = 500'000'000;  // ~1 ms at 0.35 × 1430 GF
  m.dram_bytes = 1000;
  m.lane_slots = 32;
  m.active_lane_slots = 32;
  const TimeBreakdown tb = model_time(m, k40());
  EXPECT_FALSE(tb.memory_bound);
  const double expected = 500e6 / (1430.0 * 0.35 * 1e9);
  EXPECT_NEAR(tb.compute_seconds, expected, expected * 1e-12);
}

TEST(TimeModel, DivergenceSlowsComputeLeg) {
  KernelMetrics full, half;
  full.flops = half.flops = 1'000'000'000;
  full.lane_slots = half.lane_slots = 64;
  full.active_lane_slots = 64;
  half.active_lane_slots = 32;
  const TimeBreakdown t_full = model_time(full, k40());
  const TimeBreakdown t_half = model_time(half, k40());
  EXPECT_NEAR(t_half.compute_seconds, 2.0 * t_full.compute_seconds, 1e-12);
}

TEST(TimeModel, ApplyStoresModeledSeconds) {
  KernelMetrics m;
  m.flops = 1'000'000'000;
  m.dram_bytes = 100;
  m.lane_slots = 32;
  m.active_lane_slots = 32;
  const TimeBreakdown tb = apply_time_model(m, k40());
  EXPECT_DOUBLE_EQ(m.modeled_seconds, tb.total_seconds);
  EXPECT_GT(m.gflops(), 0.0);
}

TEST(TimeModel, CalibrationLandsNearPaperPlateau) {
  // A divergence-free, cache-resident kernel should deliver ~485 GFlop/s —
  // the paper's measured Predictive-RP plateau on the K40 (Table I).
  KernelMetrics m;
  m.flops = 1'000'000'000;
  m.dram_bytes = 1;  // fully cached
  m.lane_slots = 1000;
  m.active_lane_slots = 970;  // 97% warp efficiency
  apply_time_model(m, k40());
  EXPECT_NEAR(m.gflops(), 485.0, 10.0);
}

TEST(TimeModel, EmptyKernelHasZeroTime) {
  KernelMetrics m;
  const TimeBreakdown tb = model_time(m, k40());
  EXPECT_DOUBLE_EQ(tb.compute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(tb.memory_seconds, 0.0);
}

}  // namespace
}  // namespace bd::simt
