/// Tests for the warp memory coalescer.

#include <gtest/gtest.h>

#include "simt/coalescer.hpp"
#include "util/check.hpp"

namespace bd::simt {
namespace {

TEST(Coalescer, ContiguousLanesOneTransaction) {
  std::vector<LaneAccess> accesses;
  for (int i = 0; i < 16; ++i) {
    accesses.push_back({static_cast<std::uint64_t>(i) * 8, 8});
  }
  const CoalesceResult r = coalesce(accesses, 128);
  EXPECT_EQ(r.line_addrs.size(), 1u);
  EXPECT_EQ(r.bytes_requested, 128u);
  EXPECT_EQ(r.bytes_transferred, 128u);
}

TEST(Coalescer, FullWarpContiguousDoublesTwoLines) {
  std::vector<LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) {
    accesses.push_back({static_cast<std::uint64_t>(i) * 8, 8});
  }
  const CoalesceResult r = coalesce(accesses, 128);
  EXPECT_EQ(r.line_addrs.size(), 2u);
  EXPECT_EQ(r.bytes_requested, 256u);
  EXPECT_EQ(r.bytes_transferred, 256u);
}

TEST(Coalescer, SameAddressAllLanesBroadcast) {
  std::vector<LaneAccess> accesses(32, LaneAccess{1000, 8});
  const CoalesceResult r = coalesce(accesses, 128);
  EXPECT_EQ(r.line_addrs.size(), 1u);
  EXPECT_EQ(r.bytes_requested, 256u);
  EXPECT_EQ(r.bytes_transferred, 128u);
  // This is the >100% gld_efficiency case of the paper's Table I.
  EXPECT_GT(static_cast<double>(r.bytes_requested) /
                static_cast<double>(r.bytes_transferred),
            1.0);
}

TEST(Coalescer, ScatteredLanesOneLineEach) {
  std::vector<LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) {
    accesses.push_back({static_cast<std::uint64_t>(i) * 4096, 8});
  }
  const CoalesceResult r = coalesce(accesses, 128);
  EXPECT_EQ(r.line_addrs.size(), 32u);
  EXPECT_EQ(r.bytes_transferred, 32u * 128u);
}

TEST(Coalescer, StraddlingAccessTouchesTwoLines) {
  const std::vector<LaneAccess> accesses{{120, 16}};
  const CoalesceResult r = coalesce(accesses, 128);
  EXPECT_EQ(r.line_addrs.size(), 2u);
  EXPECT_EQ(r.line_addrs[0], 0u);
  EXPECT_EQ(r.line_addrs[1], 128u);
}

TEST(Coalescer, DuplicateLinesDeduplicated) {
  const std::vector<LaneAccess> accesses{{0, 8}, {8, 8}, {16, 8}, {700, 8}};
  const CoalesceResult r = coalesce(accesses, 128);
  EXPECT_EQ(r.line_addrs.size(), 2u);
}

TEST(Coalescer, EmptyAccessList) {
  const CoalesceResult r = coalesce({}, 128);
  EXPECT_TRUE(r.line_addrs.empty());
  EXPECT_EQ(r.bytes_requested, 0u);
  EXPECT_EQ(r.bytes_transferred, 0u);
}

TEST(Coalescer, ZeroByteAccessIgnored) {
  const CoalesceResult r = coalesce({{64, 0}}, 128);
  EXPECT_TRUE(r.line_addrs.empty());
}

TEST(Coalescer, RejectsNonPow2Line) {
  EXPECT_THROW(coalesce({{0, 8}}, 100), CheckError);
}

class CoalescerStrideSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoalescerStrideSweep, TransactionsGrowWithStride) {
  const int stride = GetParam();
  std::vector<LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) {
    accesses.push_back({static_cast<std::uint64_t>(i * stride) * 8, 8});
  }
  const CoalesceResult r = coalesce(accesses, 128);
  // 32 lanes × stride doubles span ceil(32*stride*8/128) lines when dense.
  const std::size_t expected =
      std::min<std::size_t>(32, (32u * stride * 8 + 127) / 128);
  EXPECT_EQ(r.line_addrs.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Strides, CoalescerStrideSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace bd::simt
