#pragma once
/// Shared fixtures for solver-level tests: a small rp-problem over a
/// continuum-filled (noise-free) moment history.

#include <memory>

#include "beam/analytic.hpp"
#include "beam/history.hpp"
#include "beam/units.hpp"
#include "beam/wake.hpp"
#include "core/problem.hpp"

namespace bd::testing {

/// Owns everything an RpProblem points to.
struct ProblemFixture {
  beam::GridSpec spec;
  beam::BeamParams params;
  beam::WakeModel model;
  std::unique_ptr<beam::GridHistory> history;
  core::RpProblem problem;

  explicit ProblemFixture(std::uint32_t n = 32, double tolerance = 1e-6,
                          std::uint32_t subregions = 12)
      : spec(beam::make_centered_grid(n, n, 6.0, 6.0)),
        model(beam::WakeModel::longitudinal()) {
    history = std::make_unique<beam::GridHistory>(spec, subregions + 4);
    beam::Grid2D rho(spec), grad(spec);
    for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
      for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
        const double x = spec.x_at(ix);
        const double y = spec.y_at(iy);
        rho.at(ix, iy) = beam::gaussian_pdf(x, params.sigma_s) *
                         beam::gaussian_pdf(y, params.sigma_y);
        grad.at(ix, iy) = beam::gaussian_pdf_prime(x, params.sigma_s) *
                          beam::gaussian_pdf(y, params.sigma_y);
      }
    }
    history->fill_all(100, rho, grad);

    problem.history = history.get();
    problem.model = &model;
    problem.step = 100;
    problem.sub_width = 1.0;
    problem.num_subregions = subregions;
    problem.tolerance = tolerance;
  }

  /// Advance the (static) history by one step so stateful solvers can be
  /// stepped repeatedly.
  void advance() {
    beam::Grid2D rho(spec), grad(spec);
    for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
      for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
        const double x = spec.x_at(ix);
        const double y = spec.y_at(iy);
        rho.at(ix, iy) = beam::gaussian_pdf(x, params.sigma_s) *
                         beam::gaussian_pdf(y, params.sigma_y);
        grad.at(ix, iy) = beam::gaussian_pdf_prime(x, params.sigma_s) *
                          beam::gaussian_pdf(y, params.sigma_y);
      }
    }
    history->push_step(history->latest_step() + 1, rho, grad);
    problem.step = history->latest_step();
  }

  /// Analytic continuum force at grid node (ix, iy).
  double exact(std::uint32_t ix, std::uint32_t iy) const {
    return beam::analytic_force(spec.x_at(ix), spec.y_at(iy), model, params,
                                problem.r_max(), 1e-11);
  }
};

}  // namespace bd::testing
