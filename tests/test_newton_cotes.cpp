/// Tests for the Newton–Cotes rules (the rp-integral's inner quadrature).

#include <gtest/gtest.h>

#include <cmath>

#include "quad/newton_cotes.hpp"
#include "util/check.hpp"

namespace bd::quad {
namespace {

TEST(NewtonCotes, WeightsSumToOne) {
  for (int n = 2; n <= 9; ++n) {
    const auto w = newton_cotes_weights(n);
    ASSERT_EQ(w.size(), static_cast<std::size_t>(n));
    double sum = 0.0;
    for (double v : w) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-14) << "n=" << n;
  }
}

TEST(NewtonCotes, WeightsAreSymmetric) {
  for (int n = 2; n <= 9; ++n) {
    const auto w = newton_cotes_weights(n);
    for (int i = 0; i < n / 2; ++i) {
      EXPECT_NEAR(w[static_cast<std::size_t>(i)],
                  w[static_cast<std::size_t>(n - 1 - i)], 1e-15)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(NewtonCotes, UnsupportedPointCountsThrow) {
  EXPECT_THROW(newton_cotes_weights(1), bd::CheckError);
  EXPECT_THROW(newton_cotes_weights(10), bd::CheckError);
}

TEST(NewtonCotes, TrapezoidIsExactForLinear) {
  const double v = newton_cotes([](double x) { return 3.0 * x + 1.0; }, 0.0,
                                2.0, 2);
  EXPECT_NEAR(v, 8.0, 1e-13);
}

TEST(NewtonCotes, SimpsonExactForCubic) {
  const double v =
      newton_cotes([](double x) { return x * x * x; }, 0.0, 1.0, 3);
  EXPECT_NEAR(v, 0.25, 1e-14);
}

// Property sweep: the n-point closed rule integrates polynomials exactly
// up to its degree of exactness.
class ExactnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExactnessSweep, ExactUpToDegree) {
  const int points = GetParam();
  const int degree = newton_cotes_exactness(points);
  for (int d = 0; d <= degree; ++d) {
    const double v = newton_cotes(
        [d](double x) { return std::pow(x, d); }, 0.0, 1.0, points);
    const double exact = 1.0 / (d + 1);
    EXPECT_NEAR(v, exact, 1e-10 * std::max(1.0, std::abs(exact)))
        << "points=" << points << " degree=" << d;
  }
  // ... and fails to be exact one degree past that (generic interval).
  const int d = degree + 1;
  const double v = newton_cotes(
      [d](double x) { return std::pow(x, d); }, 0.0, 1.0, points);
  EXPECT_GT(std::abs(v - 1.0 / (d + 1)), 1e-12) << "points=" << points;
}

INSTANTIATE_TEST_SUITE_P(AllOrders, ExactnessSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9));

TEST(NewtonCotes, CompositeConvergesOnSmoothFunction) {
  auto f = [](double x) { return std::sin(x); };
  const double exact = 1.0 - std::cos(1.0);
  double prev_err = 1.0;
  for (int panels : {1, 2, 4, 8}) {
    const double err =
        std::abs(composite_newton_cotes(f, 0.0, 1.0, 3, panels) - exact);
    EXPECT_LT(err, prev_err + 1e-16);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-7);
}

TEST(NewtonCotes, CompositeValidatesPanels) {
  EXPECT_THROW(
      composite_newton_cotes([](double) { return 1.0; }, 0.0, 1.0, 3, 0),
      bd::CheckError);
}

TEST(NewtonCotes, ReversedIntervalGivesNegative) {
  const double fwd = newton_cotes([](double x) { return x; }, 0.0, 1.0, 3);
  const double rev = newton_cotes([](double x) { return x; }, 1.0, 0.0, 3);
  EXPECT_NEAR(fwd, -rev, 1e-14);
}

}  // namespace
}  // namespace bd::quad
