/// Integration tests for the full four-step simulation driver.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/two_phase.hpp"
#include "beam/analytic.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace bd::core {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.particles = 20000;
  config.nx = 32;
  config.ny = 32;
  config.tolerance = 1e-6;
  config.rigid = true;
  return config;
}

std::unique_ptr<RpSolver> predictive() {
  return std::make_unique<PredictiveSolver>(simt::tesla_k40());
}

TEST(Simulation, RequiresInitialize) {
  Simulation sim(small_config(), predictive());
  EXPECT_THROW(sim.step(), bd::CheckError);
}

TEST(Simulation, InitializeOnlyOnce) {
  Simulation sim(small_config(), predictive());
  sim.initialize();
  EXPECT_THROW(sim.initialize(), bd::CheckError);
}

TEST(Simulation, RequiresSolver) {
  EXPECT_THROW(Simulation(small_config(), nullptr), bd::CheckError);
}

TEST(SimConfigValidation, RejectsBadFieldsByName) {
  const auto expect_rejected = [](auto mutate, const std::string& field) {
    SimConfig config = small_config();
    mutate(config);
    try {
      Simulation sim(config, predictive());
      FAIL() << "expected rejection of bad " << field;
    } catch (const bd::CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << "message should name '" << field << "': " << e.what();
    }
  };
  expect_rejected([](SimConfig& c) { c.particles = 0; }, "particles");
  expect_rejected([](SimConfig& c) { c.nx = 0; }, "nx");
  expect_rejected([](SimConfig& c) { c.ny = 0; }, "ny");
  expect_rejected([](SimConfig& c) { c.half_extent_x = 0.0; },
                  "half_extent_x");
  expect_rejected([](SimConfig& c) { c.sub_width = -1.0; }, "sub_width");
  expect_rejected([](SimConfig& c) { c.num_subregions = 0; },
                  "num_subregions");
  expect_rejected([](SimConfig& c) { c.tolerance = 0.0; }, "tolerance");
  expect_rejected([](SimConfig& c) { c.tolerance = -1e-6; }, "tolerance");
  expect_rejected([](SimConfig& c) { c.dt = 0.0; }, "dt");
  expect_rejected([](SimConfig& c) { c.health.max_sanitized_fraction = 0.0; },
                  "max_sanitized_fraction");
  expect_rejected([](SimConfig& c) { c.health.demote_after = 0; },
                  "demote_after");
}

TEST(SimConfigValidation, DefaultsAreValid) {
  SimConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(Simulation, TransverseNeedsSecondSolver) {
  SimConfig config = small_config();
  config.compute_transverse = true;
  EXPECT_THROW(Simulation(config, predictive()), bd::CheckError);
}

TEST(Simulation, StepsAdvanceAndRecordStats) {
  Simulation sim(small_config(), predictive());
  sim.initialize();
  const auto stats = sim.run(3);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].step, 1);
  EXPECT_EQ(stats[2].step, 3);
  EXPECT_EQ(sim.current_step(), 3);
  for (const auto& s : stats) {
    EXPECT_GT(s.longitudinal.kernel_intervals, 0u);
    EXPECT_GE(s.deposit_seconds, 0.0);
    EXPECT_LT(s.dropped_charge, 0.01);
  }
}

TEST(Simulation, RigidBunchDoesNotMove) {
  Simulation sim(small_config(), predictive());
  sim.initialize();
  const double s0 = sim.particles().s()[0];
  sim.run(2);
  EXPECT_DOUBLE_EQ(sim.particles().s()[0], s0);
}

TEST(Simulation, DynamicBunchEvolvesUnderSelfForce) {
  SimConfig config = small_config();
  config.rigid = false;
  Simulation sim(config, predictive());
  sim.initialize();
  const double s0 = sim.particles().s()[100];
  sim.run(3);
  EXPECT_NE(sim.particles().s()[100], s0);
  // Momenta picked up finite force kicks.
  double max_ps = 0.0;
  for (double v : sim.particles().ps()) max_ps = std::max(max_ps, std::abs(v));
  EXPECT_GT(max_ps, 0.0);
  EXPECT_LT(max_ps, 1.0);  // forces are small; no blow-up
}

TEST(Simulation, ForceGridMatchesAnalyticAtCenterline) {
  SimConfig config = small_config();
  config.particles = 200000;  // tame Monte-Carlo noise
  Simulation sim(config, predictive());
  sim.initialize();
  sim.run(2);
  const beam::Grid2D& force = sim.force_s();
  const beam::GridSpec& spec = force.spec();
  const std::uint32_t iy = spec.ny / 2;
  std::vector<double> computed, exact;
  for (std::uint32_t ix = 4; ix < spec.nx - 4; ++ix) {
    computed.push_back(force.at(ix, iy));
    exact.push_back(beam::analytic_force(spec.x_at(ix), spec.y_at(iy),
                                         config.longitudinal, config.beam,
                                         12.0, 1e-10));
  }
  EXPECT_GT(util::correlation(computed, exact), 0.995);
}

TEST(Simulation, TransverseSolveProducesAntisymmetricForce) {
  SimConfig config = small_config();
  config.particles = 100000;
  config.compute_transverse = true;
  Simulation sim(config, predictive(),
                 std::make_unique<PredictiveSolver>(simt::tesla_k40()));
  sim.initialize();
  sim.run(1);
  const beam::Grid2D& fy = sim.force_y();
  const beam::GridSpec& spec = fy.spec();
  // F_y above the axis and below the axis have opposite signs.
  const std::uint32_t ix = spec.nx / 2;
  const double above = fy.at(ix, 3 * spec.ny / 4);
  const double below = fy.at(ix, spec.ny / 4);
  EXPECT_LT(above * below, 0.0);
}

TEST(Simulation, MakeProblemReflectsConfig) {
  Simulation sim(small_config(), predictive());
  sim.initialize();
  const RpProblem problem = sim.make_problem(sim.config().longitudinal);
  EXPECT_EQ(problem.num_subregions, 12u);
  EXPECT_DOUBLE_EQ(problem.tolerance, 1e-6);
  EXPECT_EQ(problem.step, 0);
  EXPECT_EQ(problem.num_points(), 32u * 32u);
}

TEST(Simulation, DeterministicForSeed) {
  Simulation a(small_config(), predictive());
  Simulation b(small_config(), predictive());
  a.initialize();
  b.initialize();
  a.run(2);
  b.run(2);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.particles().s()[i], b.particles().s()[i]);
  }
  EXPECT_DOUBLE_EQ(a.force_s().at(16, 16), b.force_s().at(16, 16));
}

TEST(Simulation, MonteCarloErrorShrinksWithParticles) {
  // The mechanism behind Fig. 3: force error vs the analytic reference
  // drops as N grows.
  double prev_mse = 1e300;
  for (std::size_t n : {2000, 32000}) {
    SimConfig config = small_config();
    config.particles = n;
    Simulation sim(config, std::make_unique<baselines::TwoPhaseSolver>(
                               simt::tesla_k40()));
    sim.initialize();
    sim.run(1);
    const beam::Grid2D& force = sim.force_s();
    const beam::GridSpec& spec = force.spec();
    double mse = 0.0;
    int count = 0;
    for (std::uint32_t iy = 8; iy < 24; ++iy) {
      for (std::uint32_t ix = 8; ix < 24; ++ix) {
        const double exact = beam::analytic_force(
            spec.x_at(ix), spec.y_at(iy), config.longitudinal, config.beam,
            12.0, 1e-10);
        const double d = force.at(ix, iy) - exact;
        mse += d * d;
        ++count;
      }
    }
    mse /= count;
    EXPECT_LT(mse, prev_mse);
    prev_mse = mse;
  }
}

}  // namespace
}  // namespace bd::core
