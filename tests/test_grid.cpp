/// Tests for the 2-D grid and interpolation weights.

#include <gtest/gtest.h>

#include "beam/grid.hpp"
#include "util/check.hpp"

namespace bd::beam {
namespace {

TEST(GridSpec, CenteredGridGeometry) {
  const GridSpec spec = make_centered_grid(5, 3, 2.0, 1.0);
  EXPECT_EQ(spec.nx, 5u);
  EXPECT_EQ(spec.ny, 3u);
  EXPECT_DOUBLE_EQ(spec.x0, -2.0);
  EXPECT_DOUBLE_EQ(spec.x_max(), 2.0);
  EXPECT_DOUBLE_EQ(spec.dx, 1.0);
  EXPECT_DOUBLE_EQ(spec.dy, 1.0);
  EXPECT_DOUBLE_EQ(spec.x_at(3), 1.0);
  EXPECT_DOUBLE_EQ(spec.gx(1.5), 3.5);
  EXPECT_EQ(spec.nodes(), 15u);
}

TEST(GridSpec, ValidatesArguments) {
  EXPECT_THROW(make_centered_grid(1, 3, 1.0, 1.0), bd::CheckError);
  EXPECT_THROW(make_centered_grid(4, 4, 0.0, 1.0), bd::CheckError);
}

TEST(Grid2D, AtAndFill) {
  Grid2D g(make_centered_grid(4, 4, 1.0, 1.0));
  g.fill(2.0);
  EXPECT_DOUBLE_EQ(g.at(3, 3), 2.0);
  g.at(1, 2) = -1.0;
  EXPECT_DOUBLE_EQ(g.at(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(g.sum(), 2.0 * 16 - 3.0);
  EXPECT_DOUBLE_EQ(g.max_abs(), 2.0);
}

TEST(Grid2D, BilinearReproducesLinearField) {
  const GridSpec spec = make_centered_grid(11, 11, 5.0, 5.0);
  Grid2D g(spec);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      g.at(ix, iy) = 2.0 * spec.x_at(ix) - 3.0 * spec.y_at(iy) + 1.0;
    }
  }
  for (double x : {-4.3, -1.1, 0.0, 2.7}) {
    for (double y : {-3.9, 0.4, 4.9}) {
      EXPECT_NEAR(g.bilinear(x, y), 2.0 * x - 3.0 * y + 1.0, 1e-12);
    }
  }
}

TEST(Grid2D, BilinearZeroOutside) {
  Grid2D g(make_centered_grid(4, 4, 1.0, 1.0));
  g.fill(5.0);
  EXPECT_DOUBLE_EQ(g.bilinear(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(g.bilinear(0.0, -1.5), 0.0);
}

TEST(Grid2D, BilinearAtExactEdge) {
  Grid2D g(make_centered_grid(3, 3, 1.0, 1.0));
  g.fill(4.0);
  EXPECT_DOUBLE_EQ(g.bilinear(1.0, 1.0), 4.0);   // far corner
  EXPECT_DOUBLE_EQ(g.bilinear(-1.0, -1.0), 4.0); // near corner
}

TEST(TscWeights, PartitionOfUnityAndSymmetry) {
  double w[3];
  for (double f : {-0.5, -0.25, 0.0, 0.3, 0.5}) {
    tsc_weights(f, w);
    EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-14) << "f=" << f;
    EXPECT_GE(w[0], 0.0);
    EXPECT_GE(w[1], 0.0);
    EXPECT_GE(w[2], 0.0);
  }
  // Symmetry: w(f) reversed equals w(-f).
  double wp[3], wm[3];
  tsc_weights(0.3, wp);
  tsc_weights(-0.3, wm);
  EXPECT_NEAR(wp[0], wm[2], 1e-14);
  EXPECT_NEAR(wp[1], wm[1], 1e-14);
}

TEST(TscWeights, CenteredSampleWeights) {
  double w[3];
  tsc_weights(0.0, w);
  EXPECT_NEAR(w[0], 0.125, 1e-14);
  EXPECT_NEAR(w[1], 0.75, 1e-14);
  EXPECT_NEAR(w[2], 0.125, 1e-14);
}

TEST(TscWeights, ReproducesLinearFunctions) {
  // Σ w_i · (i-1) = f  — the first-moment (linear exactness) property.
  double w[3];
  for (double f : {-0.4, -0.1, 0.2, 0.45}) {
    tsc_weights(f, w);
    EXPECT_NEAR(-w[0] + w[2], f, 1e-14);
  }
}

}  // namespace
}  // namespace bd::beam
