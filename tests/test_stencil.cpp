/// Tests for the 27-point space–time interpolation stencil.

#include <gtest/gtest.h>

#include <cmath>

#include "beam/stencil.hpp"
#include "simt/trace.hpp"

namespace bd::beam {
namespace {

GridSpec spec() { return make_centered_grid(17, 17, 4.0, 4.0); }

/// History whose planes hold a + b·x + c·y + d·t (linear in space-time).
GridHistory linear_history(double a, double b, double c, double d,
                           std::int64_t latest, std::uint32_t depth) {
  GridHistory history(spec(), depth);
  Grid2D rho(spec()), grad(spec());
  for (std::int64_t step = latest - depth + 1; step <= latest; ++step) {
    for (std::uint32_t iy = 0; iy < spec().ny; ++iy) {
      for (std::uint32_t ix = 0; ix < spec().nx; ++ix) {
        rho.at(ix, iy) = a + b * spec().x_at(ix) + c * spec().y_at(iy) +
                         d * static_cast<double>(step);
        grad.at(ix, iy) = b;
      }
    }
    if (step == latest - depth + 1) {
      history.fill_all(step, rho, grad);
    } else {
      history.push_step(step, rho, grad);
    }
  }
  return history;
}

TEST(Stencil, ReproducesLinearSpaceTimeField) {
  const GridHistory history = linear_history(1.0, 2.0, -0.5, 0.25, 10, 6);
  simt::NullProbe& probe = simt::NullProbe::instance();
  for (double t : {9.2, 8.7, 9.9}) {
    for (double x : {-2.3, 0.1, 1.9}) {
      for (double y : {-1.7, 0.4}) {
        const double v =
            sample_spacetime(history, kChannelRho, x, y, t, probe);
        EXPECT_NEAR(v, 1.0 + 2.0 * x - 0.5 * y + 0.25 * t, 1e-10)
            << "x=" << x << " y=" << y << " t=" << t;
      }
    }
  }
}

TEST(Stencil, QuadraticInTimeIsExact) {
  // Planes hold t² — backward quadratic interpolation must be exact.
  GridHistory history(spec(), 6);
  Grid2D rho(spec()), grad(spec());
  for (std::int64_t step = 5; step <= 10; ++step) {
    rho.fill(static_cast<double>(step * step));
    if (step == 5) {
      history.fill_all(step, rho, grad);
    } else {
      history.push_step(step, rho, grad);
    }
  }
  simt::NullProbe& probe = simt::NullProbe::instance();
  for (double t : {9.5, 8.25, 9.9}) {
    EXPECT_NEAR(sample_spacetime(history, kChannelRho, 0.0, 0.0, t, probe),
                t * t, 1e-9);
  }
}

TEST(Stencil, ZeroOutsideGridWithoutLoads) {
  const GridHistory history = linear_history(5.0, 0.0, 0.0, 0.0, 3, 4);
  simt::LaneTrace trace;
  const double v =
      sample_spacetime(history, kChannelRho, 100.0, 0.0, 2.5, trace);
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(trace.loads().empty());
  ASSERT_EQ(trace.branches().size(), 1u);
  EXPECT_FALSE(trace.branches()[0].taken);
}

TEST(Stencil, IssuesNineRowLoadsInBounds) {
  const GridHistory history = linear_history(1.0, 0.0, 0.0, 0.0, 5, 5);
  simt::LaneTrace trace;
  sample_spacetime(history, kChannelRho, 0.1, -0.2, 4.5, trace);
  EXPECT_EQ(trace.loads().size(),
            static_cast<std::size_t>(kLoadsPerSample));
  for (const auto& load : trace.loads()) {
    EXPECT_EQ(load.bytes, 3 * sizeof(double));
  }
}

TEST(Stencil, LoadAddressesPointIntoHistoryWindow) {
  // Probed addresses live in the history's device-virtual window (fixed
  // base + in-buffer offset), not at the host allocation: identically
  // configured histories replay identical addresses wherever the host
  // allocator placed them (the fleet-vs-solo metrics contract).
  const GridHistory history = linear_history(1.0, 0.0, 0.0, 0.0, 5, 5);
  simt::LaneTrace trace;
  sample_spacetime(history, kChannelRho, 0.0, 0.0, 4.5, trace);
  const auto lo = reinterpret_cast<std::uint64_t>(
      history.probe_address(history.plane(1, kChannelRho)));
  const std::uint64_t hi =
      lo + history.footprint_bytes();  // conservative bound
  for (const auto& load : trace.loads()) {
    EXPECT_GE(load.addr + 24, lo);
    EXPECT_LT(load.addr, hi);
  }
  // And the window is allocation-independent: a second identical history
  // maps its plane base to the same virtual address.
  const GridHistory twin = linear_history(1.0, 0.0, 0.0, 0.0, 5, 5);
  EXPECT_EQ(twin.probe_address(twin.plane(1, kChannelRho)),
            history.probe_address(history.plane(1, kChannelRho)));
}

TEST(Stencil, ClampsTimeNearHistoryEdges) {
  const GridHistory history = linear_history(0.0, 0.0, 0.0, 1.0, 5, 4);
  simt::NullProbe& probe = simt::NullProbe::instance();
  // t beyond latest and before oldest-2 are clamped, not fatal; linear
  // field extrapolates exactly either way.
  EXPECT_NEAR(sample_spacetime(history, kChannelRho, 0.0, 0.0, 5.4, probe),
              5.4, 1e-10);
  EXPECT_NEAR(sample_spacetime(history, kChannelRho, 0.0, 0.0, 2.2, probe),
              2.2, 1e-10);
}

TEST(Stencil, SpatialOnlySampleMatchesPlane) {
  const GridHistory history = linear_history(2.0, 1.0, 1.0, 0.0, 3, 4);
  simt::NullProbe& probe = simt::NullProbe::instance();
  const double v = sample_spatial(history, kChannelRho, 3, 0.5, -0.5, probe);
  EXPECT_NEAR(v, 2.0 + 0.5 - 0.5, 1e-10);
}

TEST(Stencil, GradientChannelSelected) {
  const GridHistory history = linear_history(1.0, 3.0, 0.0, 0.0, 3, 4);
  simt::NullProbe& probe = simt::NullProbe::instance();
  EXPECT_NEAR(
      sample_spacetime(history, kChannelDrhoDs, 0.3, 0.2, 2.5, probe), 3.0,
      1e-10);
}

}  // namespace
}  // namespace bd::beam
