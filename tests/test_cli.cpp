/// Tests for the command-line argument parser.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/cli.hpp"

namespace bd::util {
namespace {

ArgParser make_parser() {
  ArgParser args("prog", "test program");
  args.add_int("n", 10, "count");
  args.add_double("tol", 1e-6, "tolerance");
  args.add_string("mode", "fast", "mode name");
  args.add_flag("verbose", "chatty output");
  return args;
}

TEST(Cli, DefaultsApply) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.parse(1, argv));
  EXPECT_EQ(args.get_int("n"), 10);
  EXPECT_DOUBLE_EQ(args.get_double("tol"), 1e-6);
  EXPECT_EQ(args.get_string("mode"), "fast");
  EXPECT_FALSE(args.get_flag("verbose"));
}

TEST(Cli, EqualsSyntax) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog", "--n=42", "--tol=0.5", "--mode=slow"};
  ASSERT_TRUE(args.parse(4, argv));
  EXPECT_EQ(args.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(args.get_double("tol"), 0.5);
  EXPECT_EQ(args.get_string("mode"), "slow");
}

TEST(Cli, SpaceSyntax) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog", "--n", "7", "--mode", "x"};
  ASSERT_TRUE(args.parse(5, argv));
  EXPECT_EQ(args.get_int("n"), 7);
  EXPECT_EQ(args.get_string("mode"), "x");
}

TEST(Cli, FlagForms) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(args.parse(2, argv));
  EXPECT_TRUE(args.get_flag("verbose"));

  ArgParser args2 = make_parser();
  const char* argv2[] = {"prog", "--verbose=true"};
  ASSERT_TRUE(args2.parse(2, argv2));
  EXPECT_TRUE(args2.get_flag("verbose"));
}

TEST(Cli, UnknownOptionFails) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, MissingValueFails) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, PositionalArgumentRejected) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, UnregisteredLookupThrows) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.parse(1, argv));
  EXPECT_THROW(args.get_int("nope"), CheckError);
  // Wrong-type lookup also throws.
  EXPECT_THROW(args.get_int("mode"), CheckError);
}

TEST(Cli, UsageMentionsAllOptions) {
  ArgParser args = make_parser();
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("--tol"), std::string::npos);
  EXPECT_NE(usage.find("--mode"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace bd::util
