/// Tests for the set-associative LRU cache model.

#include <gtest/gtest.h>

#include "simt/cache.hpp"
#include "util/check.hpp"

namespace bd::simt {
namespace {

TEST(Cache, FirstAccessMisses) {
  SetAssocCache cache(1024, 128, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Cache, SecondAccessHits) {
  SetAssocCache cache(1024, 128, 2);
  cache.access(0);
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(64));  // same 128B line
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(Cache, DistinctLinesMiss) {
  SetAssocCache cache(1024, 128, 2);
  cache.access(0);
  EXPECT_FALSE(cache.access(128));
  EXPECT_FALSE(cache.access(256));
}

TEST(Cache, LruEvictionWithinSet) {
  // 1024B / 128B lines / 2 ways = 4 sets. Lines mapping to set 0:
  // addresses 0, 4*128=512, 8*128=1024, ...
  SetAssocCache cache(1024, 128, 2);
  ASSERT_EQ(cache.num_sets(), 4u);
  cache.access(0);      // A
  cache.access(512);    // B — set full
  EXPECT_TRUE(cache.access(0));     // touch A; B is now LRU
  cache.access(1024);   // C evicts B
  EXPECT_TRUE(cache.access(0));     // A survives
  EXPECT_FALSE(cache.access(512));  // B was evicted
}

TEST(Cache, FlushInvalidatesEverything) {
  SetAssocCache cache(1024, 128, 2);
  cache.access(0);
  cache.access(128);
  cache.flush();
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(128));
}

TEST(Cache, StatsHitRate) {
  SetAssocCache cache(1024, 128, 2);
  cache.access(0);
  cache.access(0);
  cache.access(0);
  cache.access(0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.75);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses(), 0u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

TEST(Cache, StatsAccumulate) {
  CacheStats a{3, 1};
  CacheStats b{1, 5};
  a += b;
  EXPECT_EQ(a.hits, 4u);
  EXPECT_EQ(a.misses, 6u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.4);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(1024, 100, 2), CheckError);  // non-pow2 line
  EXPECT_THROW(SetAssocCache(128, 128, 2), CheckError);   // capacity < ways
  EXPECT_THROW(SetAssocCache(1024, 128, 0), CheckError);  // zero ways
}

TEST(Cache, FullyAssociativeWorks) {
  // 4 lines, 4 ways -> 1 set.
  SetAssocCache cache(512, 128, 4);
  EXPECT_EQ(cache.num_sets(), 1u);
  for (int i = 0; i < 4; ++i) cache.access(static_cast<std::uint64_t>(i) * 128);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(cache.access(static_cast<std::uint64_t>(i) * 128));
  }
  cache.access(4 * 128);                  // evicts line 0 (LRU)
  EXPECT_FALSE(cache.access(0));
}

class CacheCapacitySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheCapacitySweep, WorkingSetWithinCapacityAlwaysHitsOnSecondPass) {
  const std::uint32_t lines = GetParam();
  SetAssocCache cache(lines * 128, 128, 4);
  // Sequential working set equal to capacity: second pass must fully hit
  // (LRU with power-of-two sets and sequential addresses is conflict-free).
  const std::uint32_t resident = cache.num_sets() * cache.ways();
  for (std::uint32_t i = 0; i < resident; ++i) cache.access(i * 128ull);
  cache.reset_stats();
  for (std::uint32_t i = 0; i < resident; ++i) cache.access(i * 128ull);
  EXPECT_EQ(cache.stats().misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(4u, 8u, 16u, 64u, 256u));

}  // namespace
}  // namespace bd::simt
