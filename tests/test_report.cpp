/// Tests for the profiler-style report rendering.

#include <gtest/gtest.h>

#include "simt/report.hpp"

namespace bd::simt {
namespace {

KernelMetrics sample_metrics() {
  KernelMetrics m;
  m.flops = 1'000'000;
  m.lane_slots = 1000;
  m.active_lane_slots = 900;
  m.bytes_requested = 500'000;
  m.bytes_transferred = 400'000;
  m.l1 = CacheStats{800, 200};
  m.l2 = CacheStats{600, 200};
  m.dram_bytes = 6400;
  m.modeled_seconds = 1e-5;
  return m;
}

TEST(Report, ProfilerReportContainsKeyMetrics) {
  const std::string r =
      profiler_report("predictive-rp", sample_metrics(), tesla_k40());
  EXPECT_NE(r.find("predictive-rp"), std::string::npos);
  EXPECT_NE(r.find("warp_execution_efficiency"), std::string::npos);
  EXPECT_NE(r.find("90.00 %"), std::string::npos);   // warp eff
  EXPECT_NE(r.find("gld_efficiency"), std::string::npos);
  EXPECT_NE(r.find("125.00 %"), std::string::npos);  // 500k/400k
  EXPECT_NE(r.find("l1_cache_global_hit_rate"), std::string::npos);
  EXPECT_NE(r.find("80.00 %"), std::string::npos);
  EXPECT_NE(r.find("binding resource"), std::string::npos);
}

TEST(Report, BindingResourceClassification) {
  const DeviceSpec spec = tesla_k40();

  KernelMetrics compute;
  compute.flops = 1'000'000'000;
  compute.lane_slots = 32;
  compute.active_lane_slots = 32;
  EXPECT_EQ(binding_resource(compute, spec), "compute-bound");

  KernelMetrics dram;
  dram.dram_bytes = 1'000'000'000;
  EXPECT_EQ(binding_resource(dram, spec), "DRAM-bound");

  KernelMetrics l1;
  l1.bytes_transferred = 1'000'000'000;
  EXPECT_EQ(binding_resource(l1, spec), "L1-bandwidth-bound");

  KernelMetrics l2;
  l2.l1.misses = 10'000'000;  // ×128 B through L2
  EXPECT_EQ(binding_resource(l2, spec), "L2-bandwidth-bound");

  EXPECT_EQ(binding_resource(KernelMetrics{}, spec), "idle");
}

TEST(Report, ComparisonReportSideBySide) {
  KernelMetrics a = sample_metrics();
  KernelMetrics b = sample_metrics();
  b.active_lane_slots = 500;
  const std::string r = comparison_report(
      {{"heuristic-rp", a}, {"predictive-rp", b}}, tesla_k40());
  EXPECT_NE(r.find("heuristic-rp"), std::string::npos);
  EXPECT_NE(r.find("predictive-rp"), std::string::npos);
  EXPECT_NE(r.find("warp execution eff %"), std::string::npos);
  EXPECT_NE(r.find("90.0"), std::string::npos);
  EXPECT_NE(r.find("50.0"), std::string::npos);
  EXPECT_NE(r.find("binding resource"), std::string::npos);
}

}  // namespace
}  // namespace bd::simt
