/// Tests for the feature standardizer.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/scaler.hpp"
#include "util/check.hpp"

namespace bd::ml {
namespace {

Dataset two_column_data() {
  Dataset d(2, 1);
  // Column 0: mean 10, column 1: mean -1.
  d.add(std::vector<double>{8.0, -2.0}, std::vector<double>{0.0});
  d.add(std::vector<double>{10.0, -1.0}, std::vector<double>{0.0});
  d.add(std::vector<double>{12.0, 0.0}, std::vector<double>{0.0});
  return d;
}

TEST(Scaler, FitComputesMoments) {
  StandardScaler scaler;
  scaler.fit(two_column_data());
  ASSERT_TRUE(scaler.fitted());
  EXPECT_NEAR(scaler.means()[0], 10.0, 1e-12);
  EXPECT_NEAR(scaler.means()[1], -1.0, 1e-12);
  EXPECT_NEAR(scaler.stds()[0], std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(Scaler, TransformCentersAndScales) {
  StandardScaler scaler;
  scaler.fit(two_column_data());
  std::vector<double> v{10.0, -1.0};
  scaler.transform(v);
  EXPECT_NEAR(v[0], 0.0, 1e-12);
  EXPECT_NEAR(v[1], 0.0, 1e-12);
}

TEST(Scaler, InverseRoundTrips) {
  StandardScaler scaler;
  scaler.fit(two_column_data());
  std::vector<double> v{12.5, 0.25};
  std::vector<double> original = v;
  scaler.transform(v);
  scaler.inverse_transform(v);
  EXPECT_NEAR(v[0], original[0], 1e-12);
  EXPECT_NEAR(v[1], original[1], 1e-12);
}

TEST(Scaler, ConstantColumnLeftUnscaled) {
  Dataset d(1, 1);
  d.add(std::vector<double>{5.0}, std::vector<double>{0.0});
  d.add(std::vector<double>{5.0}, std::vector<double>{0.0});
  StandardScaler scaler;
  scaler.fit(d);
  std::vector<double> v{7.0};
  scaler.transform(v);
  EXPECT_NEAR(v[0], 2.0, 1e-12);  // centered, not divided by ~0
}

TEST(Scaler, FitRowsMatchesFitDataset) {
  const Dataset d = two_column_data();
  StandardScaler s1, s2;
  s1.fit(d);
  std::vector<double> rows;
  for (std::size_t i = 0; i < d.size(); ++i) {
    rows.insert(rows.end(), d.features(i).begin(), d.features(i).end());
  }
  s2.fit_rows(rows, 2);
  EXPECT_NEAR(s1.means()[0], s2.means()[0], 1e-12);
  EXPECT_NEAR(s1.stds()[1], s2.stds()[1], 1e-12);
}

TEST(Scaler, ErrorsOnMisuse) {
  StandardScaler scaler;
  std::vector<double> v{1.0};
  EXPECT_THROW(scaler.transform(v), bd::CheckError);
  EXPECT_THROW(scaler.fit(Dataset(1, 1)), bd::CheckError);
  scaler.fit(two_column_data());
  std::vector<double> wrong{1.0};
  EXPECT_THROW(scaler.transform(wrong), bd::CheckError);
}

TEST(Scaler, TransformedCopies) {
  StandardScaler scaler;
  scaler.fit(two_column_data());
  const std::vector<double> v{8.0, -2.0};
  const std::vector<double> t = scaler.transformed(v);
  EXPECT_DOUBLE_EQ(v[0], 8.0);  // input untouched
  EXPECT_LT(t[0], 0.0);
}

}  // namespace
}  // namespace bd::ml
