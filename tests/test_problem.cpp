/// Tests for the RpProblem / SolveResult plumbing.

#include <gtest/gtest.h>

#include "core/predictive.hpp"
#include "core/problem.hpp"
#include "simt/device.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace bd::core {
namespace {

TEST(PredictiveOptionsValidation, RejectsBadFieldsByName) {
  const auto expect_rejected = [](auto mutate, const std::string& field) {
    PredictiveOptions options;
    mutate(options);
    try {
      PredictiveSolver solver(simt::tesla_k40(), options);
      FAIL() << "expected rejection of bad " << field;
    } catch (const bd::CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << "message should name '" << field << "': " << e.what();
    }
  };
  expect_rejected([](PredictiveOptions& o) { o.training_stride = 0; },
                  "training_stride");
  expect_rejected([](PredictiveOptions& o) { o.training_window = 0; },
                  "training_window");
  expect_rejected([](PredictiveOptions& o) { o.tile_w = 0; }, "tile_w");
  expect_rejected([](PredictiveOptions& o) { o.tile_h = 0; }, "tile_h");
  expect_rejected([](PredictiveOptions& o) { o.observation_ema = 0.0; },
                  "observation_ema");
  expect_rejected([](PredictiveOptions& o) { o.observation_ema = 1.5; },
                  "observation_ema");
}

TEST(PredictiveOptionsValidation, DefaultsConstruct) {
  EXPECT_NO_THROW(PredictiveSolver(simt::tesla_k40(), PredictiveOptions{}));
}

TEST(RpProblem, GeometryHelpers) {
  const bd::testing::ProblemFixture fixture(16, 1e-6, 10);
  const RpProblem& p = fixture.problem;
  EXPECT_EQ(p.num_points(), 256u);
  EXPECT_DOUBLE_EQ(p.r_max(), 10.0);
  EXPECT_EQ(&p.grid(), &fixture.history->spec());
}

TEST(RpProblem, PointCoordsRowMajor) {
  const bd::testing::ProblemFixture fixture(16, 1e-6);
  const RpProblem& p = fixture.problem;
  const beam::GridSpec& spec = p.grid();
  double x = 0.0, y = 0.0;
  p.point_coords(0, x, y);
  EXPECT_DOUBLE_EQ(x, spec.x0);
  EXPECT_DOUBLE_EQ(y, spec.y0);
  p.point_coords(17, x, y);  // row 1, column 1
  EXPECT_DOUBLE_EQ(x, spec.x_at(1));
  EXPECT_DOUBLE_EQ(y, spec.y_at(1));
  p.point_coords(p.num_points() - 1, x, y);
  EXPECT_DOUBLE_EQ(x, spec.x_max());
  EXPECT_DOUBLE_EQ(y, spec.y_max());
}

TEST(SolveResult, OverallSumsHostAndGpu) {
  SolveResult r;
  r.gpu_seconds = 1.0;
  r.clustering_seconds = 0.25;
  r.train_seconds = 0.5;
  r.forecast_seconds = 0.125;
  EXPECT_DOUBLE_EQ(r.overall_seconds(), 1.875);
}

}  // namespace
}  // namespace bd::core
