/// Tests for the RpProblem / SolveResult plumbing.

#include <gtest/gtest.h>

#include "core/problem.hpp"
#include "test_helpers.hpp"

namespace bd::core {
namespace {

TEST(RpProblem, GeometryHelpers) {
  const bd::testing::ProblemFixture fixture(16, 1e-6, 10);
  const RpProblem& p = fixture.problem;
  EXPECT_EQ(p.num_points(), 256u);
  EXPECT_DOUBLE_EQ(p.r_max(), 10.0);
  EXPECT_EQ(&p.grid(), &fixture.history->spec());
}

TEST(RpProblem, PointCoordsRowMajor) {
  const bd::testing::ProblemFixture fixture(16, 1e-6);
  const RpProblem& p = fixture.problem;
  const beam::GridSpec& spec = p.grid();
  double x = 0.0, y = 0.0;
  p.point_coords(0, x, y);
  EXPECT_DOUBLE_EQ(x, spec.x0);
  EXPECT_DOUBLE_EQ(y, spec.y0);
  p.point_coords(17, x, y);  // row 1, column 1
  EXPECT_DOUBLE_EQ(x, spec.x_at(1));
  EXPECT_DOUBLE_EQ(y, spec.y_at(1));
  p.point_coords(p.num_points() - 1, x, y);
  EXPECT_DOUBLE_EQ(x, spec.x_max());
  EXPECT_DOUBLE_EQ(y, spec.y_max());
}

TEST(SolveResult, OverallSumsHostAndGpu) {
  SolveResult r;
  r.gpu_seconds = 1.0;
  r.clustering_seconds = 0.25;
  r.train_seconds = 0.5;
  r.forecast_seconds = 0.125;
  EXPECT_DOUBLE_EQ(r.overall_seconds(), 1.875);
}

}  // namespace
}  // namespace bd::core
