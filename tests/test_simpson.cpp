/// Tests for the Simpson estimate with Richardson error bound (the
/// RP-QUADRULE of Listing 1).

#include <gtest/gtest.h>

#include <cmath>

#include "quad/simpson.hpp"

namespace bd::quad {
namespace {

simt::NullProbe& probe() { return simt::NullProbe::instance(); }

TEST(Simpson, ValueExactForCubic) {
  const FunctionIntegrand f([](double x) { return x * x * x - x; });
  EXPECT_NEAR(simpson_value(f, 0.0, 2.0, probe()), 4.0 - 2.0, 1e-13);
}

TEST(Simpson, EstimateExactForCubicWithZeroError) {
  const FunctionIntegrand f([](double x) { return 2.0 * x * x * x + 1.0; });
  const QuadEstimate est = simpson_estimate(f, -1.0, 3.0, probe());
  EXPECT_NEAR(est.integral, (0.5 * 81 - 0.5 * 1) + 4.0, 1e-12);
  EXPECT_LT(est.error, 1e-12);
  EXPECT_EQ(est.evaluations, 5u);
}

TEST(Simpson, ErrorEstimateBoundsTrueErrorOnSmoothFunction) {
  const FunctionIntegrand f([](double x) { return std::sin(3.0 * x); });
  const double exact = (1.0 - std::cos(3.0)) / 3.0;
  const QuadEstimate est = simpson_estimate(f, 0.0, 1.0, probe());
  // Richardson-extrapolated value is far better than the raw estimate; the
  // error estimate should be the right order of magnitude.
  EXPECT_LT(std::abs(est.integral - exact), 10.0 * est.error + 1e-14);
  EXPECT_GT(est.error, 0.0);
}

TEST(Simpson, ErrorShrinksSixteenFoldPerHalving) {
  const FunctionIntegrand f([](double x) { return std::exp(2.0 * x); });
  const QuadEstimate whole = simpson_estimate(f, 0.0, 1.0, probe());
  const QuadEstimate left = simpson_estimate(f, 0.0, 0.5, probe());
  // err ~ C·h^5 for fixed integrand: halving h cuts the local error ~32x;
  // relative to the width-proportional tolerance that is the ~16x the
  // kernels' Richardson coarsening hint relies on. Allow slack.
  EXPECT_LT(left.error, whole.error / 8.0);
}

TEST(Simpson, EstimateAccumulation) {
  const FunctionIntegrand f([](double x) { return x; });
  QuadEstimate total;
  total += simpson_estimate(f, 0.0, 1.0, probe());
  total += simpson_estimate(f, 1.0, 2.0, probe());
  EXPECT_NEAR(total.integral, 2.0, 1e-13);
  EXPECT_EQ(total.evaluations, 10u);
}

TEST(Simpson, CountsFlopsThroughProbe) {
  simt::CountingProbe counter;
  const FunctionIntegrand f([](double) { return 1.0; }, 7);
  simpson_estimate(f, 0.0, 1.0, counter);
  // 5 evaluations × 7 flops + 18 combination flops.
  EXPECT_EQ(counter.flops(), 5u * 7u + 18u);
}

TEST(Simpson, ZeroWidthIntervalIsZero) {
  const FunctionIntegrand f([](double x) { return x * x; });
  const QuadEstimate est = simpson_estimate(f, 1.5, 1.5, probe());
  EXPECT_DOUBLE_EQ(est.integral, 0.0);
  EXPECT_DOUBLE_EQ(est.error, 0.0);
}

}  // namespace
}  // namespace bd::quad
