/// Tests for the console table renderer.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/table.hpp"

namespace bd::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  ConsoleTable table({"name", "value"});
  table.cell("x").cell(1.5, 1);
  table.end_row();
  table.cell("longer-name").cell(std::int64_t{22});
  table.end_row();
  const std::string out = table.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| longer-name "), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::size_t len = eol - pos;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    pos = eol + 1;
  }
}

TEST(Table, RowArityChecked) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
  table.cell("1");
  EXPECT_THROW(table.end_row(), CheckError);
}

TEST(Table, EmptyHeadingsRejected) {
  EXPECT_THROW(ConsoleTable({}), CheckError);
}

TEST(Table, CountsRowsAndColumns) {
  ConsoleTable table({"a", "b", "c"});
  EXPECT_EQ(table.columns(), 3u);
  table.add_row({"1", "2", "3"});
  table.add_row({"4", "5", "6"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 0), "-0");  // printf semantics
  EXPECT_EQ(format_double(2.0, 3), "2.000");
}

}  // namespace
}  // namespace bd::util
