/// Tests for util/telemetry: histogram bucket edges, deterministic shard
/// merging, span nesting, and well-formed chrome trace_events JSON.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/parallel.hpp"
#include "util/telemetry.hpp"

namespace bd::util::telemetry {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser — just enough to validate and walk the trace export.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) {
      static const JsonValue null;
      return null;
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_literal(out);
    if (c == 'n') return parse_literal(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // keep the validator simple: skip the code point
            out.push_back('?');
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool parse_literal(JsonValue& out) {
    auto match = [&](const char* lit) {
      const std::size_t n = std::string(lit).size();
      if (text_.compare(pos_, n, lit) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------------

TEST(HistogramBuckets, EdgesFollowLog2Rule) {
  // Bucket 0: everything below 1 (and non-finite values).
  EXPECT_EQ(histogram_bucket_index(0.0), 0u);
  EXPECT_EQ(histogram_bucket_index(0.5), 0u);
  EXPECT_EQ(histogram_bucket_index(0.999), 0u);
  EXPECT_EQ(histogram_bucket_index(-5.0), 0u);
  EXPECT_EQ(histogram_bucket_index(std::numeric_limits<double>::quiet_NaN()),
            0u);

  // Bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(histogram_bucket_index(1.0), 1u);
  EXPECT_EQ(histogram_bucket_index(1.999), 1u);
  EXPECT_EQ(histogram_bucket_index(2.0), 2u);
  EXPECT_EQ(histogram_bucket_index(3.999), 2u);
  EXPECT_EQ(histogram_bucket_index(4.0), 3u);
  EXPECT_EQ(histogram_bucket_index(1024.0), 11u);
  EXPECT_EQ(histogram_bucket_index(1048576.0), 21u);

  // Everything huge (but finite) saturates into the last bucket;
  // non-finite values join bucket 0 with the other outliers.
  EXPECT_EQ(histogram_bucket_index(1e300), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket_index(std::numeric_limits<double>::infinity()),
            0u);
}

TEST(HistogramBuckets, LowerBoundsRoundTrip) {
  EXPECT_EQ(histogram_bucket_lower_bound(0), 0.0);
  for (std::size_t b = 1; b + 1 < kHistogramBuckets; ++b) {
    const double lo = histogram_bucket_lower_bound(b);
    EXPECT_EQ(histogram_bucket_index(lo), b) << "bucket " << b;
    // Just below the lower bound must land one bucket earlier.
    EXPECT_EQ(histogram_bucket_index(std::nextafter(lo, 0.0)), b - 1)
        << "bucket " << b;
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();

  counter_add("t.basic.counter");
  counter_add("t.basic.counter", 41);
  gauge_set("t.basic.gauge", 3.5);
  gauge_set("t.basic.gauge", -1.25);  // last write wins
  histogram_record("t.basic.hist", 2.0);
  histogram_record("t.basic.hist", 6.0);
  histogram_record("t.basic.hist", 0.25);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("t.basic.counter"), 42u);
  EXPECT_EQ(snap.gauges.at("t.basic.gauge"), -1.25);

  const HistogramSnapshot& h = snap.histograms.at("t.basic.hist");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 8.25);
  EXPECT_EQ(h.min, 0.25);
  EXPECT_EQ(h.max, 6.0);
  EXPECT_EQ(h.mean(), 8.25 / 3.0);
  EXPECT_EQ(h.buckets[0], 1u);  // 0.25
  EXPECT_EQ(h.buckets[2], 1u);  // 2.0
  EXPECT_EQ(h.buckets[3], 1u);  // 6.0

  reg.reset();
  const MetricsSnapshot zeroed = reg.snapshot();
  EXPECT_EQ(zeroed.counters.count("t.basic.counter"), 0u);
  EXPECT_EQ(zeroed.gauges.count("t.basic.gauge"), 0u);
  EXPECT_EQ(zeroed.histograms.count("t.basic.hist"), 0u);
}

TEST(MetricsRegistry, ShardMergeIsDeterministicAcrossThreadCounts) {
  MetricsRegistry& reg = MetricsRegistry::global();

  auto run = [&](unsigned threads) {
    ThreadPool::set_global_threads(threads);
    reg.reset();
    parallel_for(0, 20000, [&](std::size_t i) {
      counter_add("t.merge.items");
      counter_add("t.merge.weight", i % 7);
      // Small integers: double sums are exact, so even the floating-point
      // aggregates must match bit-for-bit across thread counts.
      histogram_record("t.merge.hist", static_cast<double>(i % 257));
    });
    MetricsSnapshot snap = reg.snapshot();
    ThreadPool::set_global_threads(0);  // restore the configured default
    return snap;
  };

  const MetricsSnapshot serial = run(1);
  const MetricsSnapshot parallel = run(8);

  EXPECT_EQ(serial.counters.at("t.merge.items"), 20000u);
  EXPECT_EQ(parallel.counters.at("t.merge.items"), 20000u);
  EXPECT_EQ(serial.counters.at("t.merge.weight"),
            parallel.counters.at("t.merge.weight"));

  const HistogramSnapshot& hs = serial.histograms.at("t.merge.hist");
  const HistogramSnapshot& hp = parallel.histograms.at("t.merge.hist");
  EXPECT_EQ(hs.count, hp.count);
  EXPECT_EQ(hs.sum, hp.sum);
  EXPECT_EQ(hs.min, hp.min);
  EXPECT_EQ(hs.max, hp.max);
  EXPECT_EQ(hs.buckets, hp.buckets);
  reg.reset();
}

TEST(MetricsRegistry, SummariesRenderEveryMetric) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();
  counter_add("t.render.counter", 7);
  gauge_set("t.render.gauge", 1.5);
  histogram_record("t.render.hist", 3.0);

  const std::string text = reg.summary();
  const std::string csv = reg.summary_csv();
  for (const char* name :
       {"t.render.counter", "t.render.gauge", "t.render.hist"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
    EXPECT_NE(csv.find(name), std::string::npos) << name;
  }
  reg.reset();
}

// ---------------------------------------------------------------------------
// TraceSession / TraceSpan
// ---------------------------------------------------------------------------

TEST(TraceSession, DisabledSpansRecordNothing) {
  TraceSession& session = TraceSession::global();
  session.stop();
  session.clear();
  {
    TraceSpan span("t.disabled", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0);  // must be a harmless no-op
  }
  EXPECT_EQ(session.event_count(), 0u);
}

TEST(TraceSession, SpansNestAndExportWellFormedChromeJson) {
  TraceSession& session = TraceSession::global();
  session.clear();
  session.start();
  {
    TraceSpan outer("t.outer", "test");
    outer.arg("step", static_cast<std::int64_t>(3));
    {
      TraceSpan inner("t.inner", "test");
      inner.arg("what", "needs \"escaping\"\n");
      volatile double sink = 0.0;
      for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
    }
  }
  session.record_complete("t.oob", "test", session.now_us(), 1.0, "\"n\":1");
  session.stop();
  EXPECT_EQ(session.event_count(), 3u);

  const std::string json = session.chrome_json();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");

  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* oob = nullptr;
  for (const JsonValue& e : events.array) {
    if (e.at("ph").str != "X") continue;
    EXPECT_EQ(e.at("pid").number, 1.0);
    EXPECT_GT(e.at("tid").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    if (e.at("name").str == "t.outer") outer = &e;
    if (e.at("name").str == "t.inner") inner = &e;
    if (e.at("name").str == "t.oob") oob = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(oob, nullptr);

  // Same thread; the inner span nests strictly inside the outer one.
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  const double outer_end = outer->at("ts").number + outer->at("dur").number;
  const double inner_end = inner->at("ts").number + inner->at("dur").number;
  EXPECT_GE(inner->at("ts").number, outer->at("ts").number);
  EXPECT_LE(inner_end, outer_end);

  // Args survive the round trip, including string escaping.
  EXPECT_EQ(outer->at("args").at("step").number, 3.0);
  EXPECT_EQ(inner->at("args").at("what").str, "needs \"escaping\"\n");
  EXPECT_EQ(oob->at("args").at("n").number, 1.0);

  session.clear();
}

TEST(TraceSession, WorkerLanesAreNamedInMetadata) {
  TraceSession& session = TraceSession::global();
  session.clear();
  session.start();
  {
    ThreadPool pool(3);
    pool.for_chunks(0, 3000, 1, [&](std::size_t, std::size_t) {
      volatile double sink = 0.0;
      for (int i = 0; i < 200; ++i) sink = sink + 1.0;
    });
    // Leave the scope so the pool joins its workers: each one names its
    // lane at startup, which may not have been scheduled yet on a busy
    // single-core host.
  }
  session.stop();

  const std::string json = session.chrome_json();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc));
  bool saw_worker_name = false;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").str != "M") continue;
    EXPECT_EQ(e.at("name").str, "thread_name");
    if (e.at("args").at("name").str.rfind("pool-worker-", 0) == 0) {
      saw_worker_name = true;
    }
  }
  EXPECT_TRUE(saw_worker_name);
  session.clear();
}

TEST(TraceSession, SummaryAggregatesPerName) {
  TraceSession& session = TraceSession::global();
  session.clear();
  session.start();
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("t.repeat", "test");
  }
  session.stop();

  const std::string text = session.summary();
  const std::string csv = session.summary_csv();
  EXPECT_NE(text.find("t.repeat"), std::string::npos);
  EXPECT_NE(csv.find("t.repeat"), std::string::npos);
  EXPECT_NE(csv.find("name,category,count"), std::string::npos);
  session.clear();
}

// ---------------------------------------------------------------------------
// Instance independence + TelemetryScope
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, InstancesAreIndependent) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter_add("t.inst.counter", 2);
  b.counter_add("t.inst.counter", 40);
  // The "last write wins" gauge rule resolves per registry: b writing
  // later (process-wide) must not override a's own last write.
  a.gauge_set("t.inst.gauge", 1.0);
  b.gauge_set("t.inst.gauge", 99.0);
  a.gauge_set("t.inst.gauge", 2.0);
  b.gauge_set("t.inst.gauge", 98.0);

  const MetricsSnapshot sa = a.snapshot();
  const MetricsSnapshot sb = b.snapshot();
  EXPECT_EQ(sa.counters.at("t.inst.counter"), 2u);
  EXPECT_EQ(sb.counters.at("t.inst.counter"), 40u);
  EXPECT_EQ(sa.gauges.at("t.inst.gauge"), 2.0);
  EXPECT_EQ(sb.gauges.at("t.inst.gauge"), 98.0);

  a.reset();
  EXPECT_EQ(a.snapshot().counters.count("t.inst.counter"), 0u);
  EXPECT_EQ(b.snapshot().counters.at("t.inst.counter"), 40u);
}

TEST(TelemetryScope, RoutesFreeFunctionsAndRestores) {
  MetricsRegistry local;
  MetricsRegistry& global = MetricsRegistry::global();
  global.reset();
  counter_add("t.scope.out");
  {
    TelemetryScope scope(&local, nullptr);
    EXPECT_EQ(scoped_metrics(), &local);
    EXPECT_EQ(&current_metrics(), &local);
    counter_add("t.scope.in", 3);
  }
  EXPECT_EQ(scoped_metrics(), nullptr);
  EXPECT_EQ(&current_metrics(), &global);
  counter_add("t.scope.out");

  const MetricsSnapshot inner = local.snapshot();
  const MetricsSnapshot outer = global.snapshot();
  EXPECT_EQ(inner.counters.at("t.scope.in"), 3u);
  EXPECT_EQ(inner.counters.count("t.scope.out"), 0u);
  EXPECT_EQ(outer.counters.at("t.scope.out"), 2u);
  EXPECT_EQ(outer.counters.count("t.scope.in"), 0u);
  global.reset();
}

TEST(TelemetryScope, ScopesNestAndNullKeepsPreviousTarget) {
  MetricsRegistry a;
  MetricsRegistry b;
  {
    TelemetryScope sa(&a, nullptr);
    {
      TelemetryScope keep(nullptr, nullptr);  // null = keep routing to a
      counter_add("t.nest.x");
      {
        TelemetryScope sb(&b, nullptr);
        counter_add("t.nest.y");
      }
      counter_add("t.nest.x");
    }
  }
  EXPECT_EQ(a.snapshot().counters.at("t.nest.x"), 2u);
  EXPECT_EQ(a.snapshot().counters.count("t.nest.y"), 0u);
  EXPECT_EQ(b.snapshot().counters.at("t.nest.y"), 1u);
}

TEST(TelemetryScope, PropagatesToPoolWorkers) {
  MetricsRegistry local;
  MetricsRegistry& global = MetricsRegistry::global();
  global.reset();
  ThreadPool::set_global_threads(4);
  {
    TelemetryScope scope(&local, nullptr);
    parallel_for(0, 20000,
                 [](std::size_t) { counter_add("t.scope.pool"); });
  }
  ThreadPool::set_global_threads(0);
  // Every worker update landed in the scoped registry, none in the global
  // one — the pool snapshots the submitting thread's scope into the job.
  EXPECT_EQ(local.snapshot().counters.at("t.scope.pool"), 20000u);
  EXPECT_EQ(global.snapshot().counters.count("t.scope.pool"), 0u);
  global.reset();
}

TEST(TraceSession, InstancesRecordIndependently) {
  TraceSession a;
  TraceSession b;
  a.start();
  b.start();
  {
    TelemetryScope scope(nullptr, &a);
    TraceSpan span("t.inst.a", "test");
  }
  {
    TelemetryScope scope(nullptr, &b);
    TraceSpan span("t.inst.b", "test");
  }
  a.stop();
  b.stop();
  EXPECT_EQ(a.event_count(), 1u);
  EXPECT_EQ(b.event_count(), 1u);
  EXPECT_NE(a.chrome_json().find("t.inst.a"), std::string::npos);
  EXPECT_EQ(a.chrome_json().find("t.inst.b"), std::string::npos);
  EXPECT_NE(b.chrome_json().find("t.inst.b"), std::string::npos);
}

TEST(TraceSession, SpanResolvesSessionAtConstruction) {
  // A span constructed inside a scope must record into that session even
  // if the scope ends before the span does.
  TraceSession local;
  local.start();
  std::unique_ptr<TraceSpan> span;
  {
    TelemetryScope scope(nullptr, &local);
    span = std::make_unique<TraceSpan>("t.resolve", "test");
  }
  span.reset();  // destroyed outside the scope
  local.stop();
  EXPECT_EQ(local.event_count(), 1u);
}

TEST(TraceSession, WriteChromeJsonProducesAFile) {
  TraceSession& session = TraceSession::global();
  session.clear();
  session.start();
  { TraceSpan span("t.file", "test"); }
  session.stop();

  const std::string path = ::testing::TempDir() + "bd_trace_test.json";
  ASSERT_TRUE(session.write_chrome_json(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  JsonValue doc;
  EXPECT_TRUE(JsonParser(contents).parse(doc));
  session.clear();
}

}  // namespace
}  // namespace bd::util::telemetry
