/// Tests for the retarded-wake integrand and its analytic continuum
/// reference (the physics of Fig. 2).

#include <gtest/gtest.h>

#include <cmath>

#include "beam/analytic.hpp"
#include "beam/bunch.hpp"
#include "beam/deposit.hpp"
#include "beam/stencil.hpp"
#include "beam/wake.hpp"
#include "quad/adaptive.hpp"
#include "simt/trace.hpp"
#include "util/rng.hpp"

namespace bd::beam {
namespace {

constexpr double kSubWidth = 1.0;
constexpr double kRMax = 12.0;

GridSpec spec() { return make_centered_grid(65, 65, 6.0, 6.0); }

/// History filled with the *continuum* Gaussian density evaluated at nodes
/// (no Monte-Carlo noise): isolates quadrature/interpolation error.
GridHistory continuum_history(const BeamParams& params) {
  GridHistory history(spec(), 16);
  Grid2D rho(spec()), grad(spec());
  for (std::uint32_t iy = 0; iy < spec().ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec().nx; ++ix) {
      const double x = spec().x_at(ix);
      const double y = spec().y_at(iy);
      rho.at(ix, iy) = gaussian_pdf(x, params.sigma_s) *
                       gaussian_pdf(y, params.sigma_y);
      grad.at(ix, iy) = gaussian_pdf_prime(x, params.sigma_s) *
                        gaussian_pdf(y, params.sigma_y);
    }
  }
  history.fill_all(20, rho, grad);
  return history;
}

TEST(Analytic, GaussianPdfNormalization) {
  EXPECT_NEAR(gaussian_pdf(0.0, 1.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-14);
  EXPECT_NEAR(gaussian_pdf(2.0, 2.0), gaussian_pdf(1.0, 1.0) / 2.0, 1e-14);
}

TEST(Analytic, PdfPrimeIsDerivative) {
  const double h = 1e-6;
  for (double x : {-1.5, -0.2, 0.7, 2.0}) {
    const double numeric =
        (gaussian_pdf(x + h, 1.3) - gaussian_pdf(x - h, 1.3)) / (2 * h);
    EXPECT_NEAR(gaussian_pdf_prime(x, 1.3), numeric, 1e-7);
  }
}

TEST(Analytic, RadialFactorVanishesFarBehind) {
  const WakeModel model = WakeModel::longitudinal();
  const BeamParams params;
  // s = -20: the retarded argument s-u is far outside the bunch for all u.
  EXPECT_NEAR(analytic_radial_factor(-20.0, model, params, kRMax, 1e-12),
              0.0, 1e-10);
}

TEST(Analytic, LongitudinalForceAntisymmetricIsh) {
  // The u^{-1/3} λ' kernel produces a wake that changes sign across the
  // bunch: positive before the head-side peak, negative behind.
  const WakeModel model = WakeModel::longitudinal();
  const BeamParams params;
  const double front = analytic_force(0.0, 0.0, model, params, kRMax);
  const double back = analytic_force(2.0, 0.0, model, params, kRMax);
  EXPECT_GT(front, 0.0);
  EXPECT_LT(back, 0.0);
}

TEST(Analytic, TransverseFactorClosedForm) {
  WakeModel model = WakeModel::longitudinal();
  model.coupling_sigma = 0.6;
  BeamParams params;
  params.sigma_y = 0.8;
  const double sigma_t = std::sqrt(0.36 + 0.64);
  EXPECT_NEAR(analytic_transverse_factor(0.5, model, params),
              gaussian_pdf(0.5, sigma_t), 1e-14);
  model.coupling_derivative = true;
  EXPECT_NEAR(analytic_transverse_factor(0.5, model, params),
              gaussian_pdf_prime(0.5, sigma_t), 1e-14);
}

TEST(Wake, IntegrandMatchesContinuumOnNoiselessGrid) {
  const BeamParams params;
  const WakeModel model = WakeModel::longitudinal();
  const GridHistory history = continuum_history(params);
  simt::NullProbe& probe = simt::NullProbe::instance();

  // Evaluate the full rp-integral with adaptive quadrature and compare to
  // the analytic continuum force at several grid points.
  for (double s : {-1.0, 0.0, 1.5}) {
    for (double y : {0.0, 0.8}) {
      const WakeIntegrand integrand(history, model, s, y, 20, kSubWidth);
      const quad::AdaptiveResult r =
          quad::adaptive_simpson(integrand, 0.0, kRMax, 1e-8, probe);
      const double exact = analytic_force(s, y, model, params, kRMax);
      // Grid interpolation + finite inner window limit the agreement.
      EXPECT_NEAR(r.integral, exact,
                  std::max(5e-4 * std::abs(exact), 5e-5))
          << "s=" << s << " y=" << y;
    }
  }
}

TEST(Wake, TransverseIntegrandMatchesContinuum) {
  const BeamParams params;
  const WakeModel model = WakeModel::transverse();
  const GridHistory history = continuum_history(params);
  simt::NullProbe& probe = simt::NullProbe::instance();
  const double y = 1.0;
  const WakeIntegrand integrand(history, model, 0.0, y, 20, kSubWidth);
  const quad::AdaptiveResult r =
      quad::adaptive_simpson(integrand, 0.0, kRMax, 1e-8, probe);
  const double exact = analytic_force(0.0, y, model, params, kRMax);
  EXPECT_NEAR(r.integral, exact, std::max(5e-3 * std::abs(exact), 2e-4));
  EXPECT_LT(exact, 0.0);  // focusing direction above the axis
}

TEST(Wake, FastRejectOutsideRangeSkipsLoads) {
  const BeamParams params;
  const WakeModel model = WakeModel::longitudinal();
  const GridHistory history = continuum_history(params);
  // Grid point at the far left: s - u leaves the grid for u > ~0.
  const WakeIntegrand integrand(history, model, -6.0, 0.0, 20, kSubWidth);
  simt::LaneTrace trace;
  const double v = integrand.eval(2.0, trace);  // s-u = -8 < grid min
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(trace.loads().empty());
}

TEST(Wake, InnerPointsControlLoadCount) {
  const BeamParams params;
  WakeModel model = WakeModel::longitudinal();
  model.inner_points = 5;
  const GridHistory history = continuum_history(params);
  const WakeIntegrand integrand(history, model, 0.0, 0.0, 20, kSubWidth);
  simt::LaneTrace trace;
  integrand.eval(0.5, trace);
  EXPECT_EQ(trace.loads().size(), 5u * kLoadsPerSample);
}

TEST(Wake, SingularKernelGrowsTowardZero) {
  const BeamParams params;
  const WakeModel model = WakeModel::longitudinal();
  const GridHistory history = continuum_history(params);
  simt::NullProbe& probe = simt::NullProbe::instance();
  const WakeIntegrand integrand(history, model, 1.0, 0.0, 20, kSubWidth);
  // |f(u)| near u=0 exceeds |f| at u=2 thanks to the (u+u0)^(-1/3) kernel
  // (λ' at the retarded position is comparable at these two offsets).
  EXPECT_GT(std::abs(integrand.eval(0.01, probe)),
            std::abs(integrand.eval(2.0, probe)));
}

TEST(Wake, DepositedBunchApproachesContinuum) {
  // Monte-Carlo deposited density: integrand value converges to the
  // continuum one as N grows.
  const BeamParams params;
  const WakeModel model = WakeModel::longitudinal();
  GridHistory continuum = continuum_history(params);
  simt::NullProbe& probe = simt::NullProbe::instance();
  const WakeIntegrand exact_integrand(continuum, model, 0.5, 0.0, 20,
                                      kSubWidth);
  const double exact = exact_integrand.eval(1.0, probe);

  double prev_err = 1e300;
  for (std::size_t n : {2000, 200000}) {
    util::Rng rng(77);
    const ParticleSet bunch = sample_gaussian_bunch(n, params, rng);
    Grid2D rho(spec()), grad(spec());
    deposit(bunch, DepositScheme::kTSC, rho);
    longitudinal_gradient(rho, grad);
    GridHistory noisy(spec(), 16);
    noisy.fill_all(20, rho, grad);
    const WakeIntegrand integrand(noisy, model, 0.5, 0.0, 20, kSubWidth);
    const double err = std::abs(integrand.eval(1.0, probe) - exact);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 5e-3);
}

}  // namespace
}  // namespace bd::beam
