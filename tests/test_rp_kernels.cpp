/// Tests for COMPUTE-RP-INTEGRAL and the RP-ADAPTIVEQUADRATURE fallback.

#include <gtest/gtest.h>

#include <cmath>

#include "core/forecast.hpp"
#include "core/rp_kernels.hpp"
#include "core/solver_scratch.hpp"
#include "simt/device.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace bd::core {
namespace {

using bd::testing::ProblemFixture;

/// Shared scratch: kernel outputs (failed spans, intervals_per_item) point
/// into it, so it must outlive each test's assertions.
SolverScratch& test_scratch() {
  static SolverScratch scratch;
  return scratch;
}

RpKernelOutput run_with_uniform_counts(const ProblemFixture& fixture,
                                       double count,
                                       std::uint32_t block = 64) {
  const RpProblem& problem = fixture.problem;
  const std::vector<double> partition = pattern_to_partition(
      std::vector<double>(problem.num_subregions, count), problem.sub_width,
      problem.r_max(), 1.0);
  static quad::PartitionSet parts;    // keep alive across return
  static ClusterAssignment clusters;  // keep alive across return
  parts.reset(problem.num_points());
  parts.bind_all(parts.add_row(partition));
  clusters = chunk_clustering(problem.num_points(), block);
  RpKernelInput input;
  input.problem = &problem;
  input.clusters = &clusters;
  input.source = PartitionSource::kPerPoint;
  input.partitions = &parts;
  return run_compute_rp_integral(simt::tesla_k40(), input, test_scratch());
}

TEST(RpKernel, CoarsePartitionProducesFailures) {
  const ProblemFixture fixture(16, 1e-7);
  const RpKernelOutput out = run_with_uniform_counts(fixture, 1.0);
  EXPECT_GT(out.failed.size(), 0u);
  EXPECT_EQ(out.integral.size(), fixture.problem.num_points());
  EXPECT_EQ(out.intervals,
            fixture.problem.num_points() * fixture.problem.num_subregions);
}

TEST(RpKernel, FinePartitionMostlyPasses) {
  const ProblemFixture fixture(16, 1e-6);
  const RpKernelOutput coarse = run_with_uniform_counts(fixture, 1.0);
  const RpKernelOutput fine = run_with_uniform_counts(fixture, 16.0);
  EXPECT_LT(fine.failed.size(), coarse.failed.size() / 2 + 1);
}

TEST(RpKernel, FallbackRestoresTolerance) {
  const ProblemFixture fixture(16, 1e-6);
  RpKernelOutput out = run_with_uniform_counts(fixture, 1.0);
  const FallbackOutput fb = run_adaptive_fallback(
      simt::tesla_k40(), fixture.problem, out.failed, out.integral, out.error,
      out.contributions, test_scratch());
  EXPECT_EQ(fb.non_converged, 0u);
  // Compare against the analytic continuum force at a few interior nodes.
  const beam::GridSpec& spec = fixture.spec;
  for (std::uint32_t iy : {spec.ny / 2}) {
    for (std::uint32_t ix : {spec.nx / 2, spec.nx / 2 + 2}) {
      const std::size_t p = static_cast<std::size_t>(iy) * spec.nx + ix;
      const double exact = fixture.exact(ix, iy);
      // Quadrature hits τ; remaining gap is interpolation bias.
      EXPECT_NEAR(out.integral[p], exact,
                  std::max(0.12 * std::abs(exact), 4e-4));
    }
  }
}

TEST(RpKernel, SharedPartitionUniformControlFlowWhenLanesAligned) {
  // With a shared partition AND warps whose lanes share the same s (and
  // hence the same in-range status), control flow is lockstep. Warps that
  // span the full s-range instead diverge on the range check — the
  // irregularity pattern clustering exists to remove.
  const ProblemFixture fixture(32, 1e-5);
  const RpProblem& problem = fixture.problem;
  const std::vector<double> shared_partition = pattern_to_partition(
      std::vector<double>(problem.num_subregions, 8.0), problem.sub_width,
      problem.r_max(), 1.0);

  // Column-major ordering: a warp = 32 points with identical s.
  const beam::GridSpec& spec = fixture.spec;
  std::vector<std::uint32_t> column_major;
  for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
    for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
      column_major.push_back(iy * spec.nx + ix);
    }
  }
  const ClusterAssignment aligned = ordered_clustering(column_major, 64);
  const ClusterAssignment row_major =
      chunk_clustering(problem.num_points(), 64);

  auto run = [&](const ClusterAssignment& clusters) {
    quad::PartitionSet shared;
    shared.reset(clusters.members.size());
    shared.bind_all(shared.add_row(shared_partition));
    RpKernelInput input;
    input.problem = &problem;
    input.clusters = &clusters;
    input.source = PartitionSource::kSharedPerCluster;
    input.partitions = &shared;
    return run_compute_rp_integral(simt::tesla_k40(), input, test_scratch());
  };
  const RpKernelOutput good = run(aligned);
  const RpKernelOutput bad = run(row_major);
  EXPECT_GT(good.metrics.warp_execution_efficiency(), 0.8);
  EXPECT_LT(bad.metrics.warp_execution_efficiency(),
            good.metrics.warp_execution_efficiency() - 0.15);
}

TEST(RpKernel, PerPointDivergenceLowersWarpEfficiency) {
  const ProblemFixture fixture(16, 1e-5);
  const RpProblem& problem = fixture.problem;
  // Give each point a workload depending on its index parity: adjacent
  // lanes differ strongly -> heavy divergence.
  quad::PartitionSet per_point;
  per_point.reset(problem.num_points());
  for (std::size_t p = 0; p < problem.num_points(); ++p) {
    const double count = (p % 2 == 0) ? 1.0 : 16.0;
    per_point.bind(p, per_point.add_row(pattern_to_partition(
                          std::vector<double>(problem.num_subregions, count),
                          problem.sub_width, problem.r_max(), 1.0)));
  }
  const ClusterAssignment clusters =
      chunk_clustering(problem.num_points(), 64);
  RpKernelInput input;
  input.problem = &problem;
  input.clusters = &clusters;
  input.source = PartitionSource::kPerPoint;
  input.partitions = &per_point;
  const RpKernelOutput out =
      run_compute_rp_integral(simt::tesla_k40(), input, test_scratch());
  EXPECT_LT(out.metrics.warp_execution_efficiency(), 0.75);
}

TEST(RpKernel, ContributionsReflectRequirement) {
  // Over-provisioned partitions report shrunken (coarsening) counts.
  const ProblemFixture fixture(16, 1e-4);
  const RpKernelOutput out = run_with_uniform_counts(fixture, 32.0);
  EXPECT_TRUE(out.failed.empty());
  double total = 0.0;
  for (double v : out.contributions.flat()) total += v;
  // Requirement is far below 32/subregion: contributions << provisioned.
  EXPECT_LT(total, 0.6 * static_cast<double>(out.intervals));
}

TEST(RpKernel, FallbackEmptyIsNoOp) {
  const ProblemFixture fixture(16, 1e-4);
  std::vector<double> integral(fixture.problem.num_points(), 0.0);
  std::vector<double> error(fixture.problem.num_points(), 0.0);
  PatternField contributions(fixture.problem.num_points(),
                             fixture.problem.num_subregions);
  const FallbackOutput fb =
      run_adaptive_fallback(simt::tesla_k40(), fixture.problem, {}, integral,
                            error, contributions, test_scratch());
  EXPECT_EQ(fb.evaluations, 0u);
  EXPECT_EQ(fb.metrics.flops, 0u);
}

TEST(RpKernel, LocalToleranceScalesWithWidth) {
  const ProblemFixture fixture(16, 1e-6);
  const double full =
      local_tolerance(fixture.problem, 0.0, fixture.problem.r_max());
  EXPECT_DOUBLE_EQ(full, 1e-6);
  EXPECT_DOUBLE_EQ(local_tolerance(fixture.problem, 0.0, 6.0), 5e-7);
}

TEST(RpKernel, InputValidation) {
  const ProblemFixture fixture(16, 1e-6);
  RpKernelInput input;
  input.problem = &fixture.problem;
  EXPECT_THROW(
      run_compute_rp_integral(simt::tesla_k40(), input, test_scratch()),
      bd::CheckError);
}

}  // namespace
}  // namespace bd::core
