/// Tests for kNN regression (the paper's access-pattern predictor).

#include <gtest/gtest.h>

#include <cmath>

#include "ml/knn.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bd::ml {
namespace {

Dataset linear_surface(std::size_t n, util::Rng& rng) {
  // y0 = 2x0 + x1, y1 = -x0 (multi-output).
  Dataset d(2, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1, 1);
    const double x1 = rng.uniform(-1, 1);
    d.add(std::vector<double>{x0, x1},
          std::vector<double>{2 * x0 + x1, -x0});
  }
  return d;
}

TEST(Knn, ExactMatchReturnsStoredTarget) {
  Dataset d(1, 1);
  d.add(std::vector<double>{1.0}, std::vector<double>{10.0});
  d.add(std::vector<double>{2.0}, std::vector<double>{20.0});
  d.add(std::vector<double>{3.0}, std::vector<double>{30.0});
  KNNRegressor knn(KnnConfig{.k = 2});
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{2.0})[0], 20.0);
}

TEST(Knn, UniformWeightsAverageNeighbors) {
  Dataset d(1, 1);
  d.add(std::vector<double>{0.0}, std::vector<double>{0.0});
  d.add(std::vector<double>{1.0}, std::vector<double>{10.0});
  KnnConfig config;
  config.k = 2;
  config.distance_weighted = false;
  config.standardize = false;
  KNNRegressor knn(config);
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.25})[0], 5.0);
}

TEST(Knn, DistanceWeightsFavorCloserNeighbor) {
  Dataset d(1, 1);
  d.add(std::vector<double>{0.0}, std::vector<double>{0.0});
  d.add(std::vector<double>{1.0}, std::vector<double>{10.0});
  KnnConfig config;
  config.k = 2;
  config.distance_weighted = true;
  config.standardize = false;
  KNNRegressor knn(config);
  knn.fit(d);
  // At x = 0.25: weights 4 and 4/3 -> prediction 10 * (4/3)/(16/3) = 2.5.
  EXPECT_NEAR(knn.predict(std::vector<double>{0.25})[0], 2.5, 1e-12);
}

TEST(Knn, BruteAndKdTreeAgree) {
  util::Rng rng(17);
  const Dataset d = linear_surface(200, rng);
  KnnConfig tree_cfg;
  tree_cfg.k = 5;
  KnnConfig brute_cfg = tree_cfg;
  brute_cfg.use_kdtree = false;
  KNNRegressor with_tree(tree_cfg), with_brute(brute_cfg);
  with_tree.fit(d);
  with_brute.fit(d);
  for (int q = 0; q < 25; ++q) {
    const std::vector<double> query{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const auto a = with_tree.predict(query);
    const auto b = with_brute.predict(query);
    EXPECT_NEAR(a[0], b[0], 1e-10);
    EXPECT_NEAR(a[1], b[1], 1e-10);
  }
}

TEST(Knn, LearnsSmoothSurface) {
  util::Rng rng(23);
  const Dataset d = linear_surface(1000, rng);
  KNNRegressor knn(KnnConfig{.k = 8});
  knn.fit(d);
  double worst = 0.0;
  for (int q = 0; q < 50; ++q) {
    const double x0 = rng.uniform(-0.8, 0.8);
    const double x1 = rng.uniform(-0.8, 0.8);
    const auto p = knn.predict(std::vector<double>{x0, x1});
    worst = std::max(worst, std::abs(p[0] - (2 * x0 + x1)));
    worst = std::max(worst, std::abs(p[1] + x0));
  }
  EXPECT_LT(worst, 0.25);  // kNN locally averages a Lipschitz surface
}

TEST(Knn, StandardizationMattersForSkewedScales) {
  // Feature 1 carries the signal but has tiny scale; feature 0 is noise
  // with huge scale. Without standardization kNN keys on the noise.
  util::Rng rng(29);
  Dataset d(2, 1);
  for (int i = 0; i < 500; ++i) {
    const double signal = rng.uniform(-0.01, 0.01);
    const double noise = rng.uniform(-1000, 1000);
    d.add(std::vector<double>{noise, signal},
          std::vector<double>{signal > 0 ? 1.0 : -1.0});
  }
  KnnConfig raw_cfg;
  raw_cfg.k = 5;
  raw_cfg.standardize = false;
  KnnConfig std_cfg = raw_cfg;
  std_cfg.standardize = true;
  KNNRegressor raw(raw_cfg), standardized(std_cfg);
  raw.fit(d);
  standardized.fit(d);
  int raw_correct = 0, std_correct = 0;
  for (int q = 0; q < 100; ++q) {
    const double signal = rng.uniform(-0.01, 0.01);
    const std::vector<double> query{rng.uniform(-1000, 1000), signal};
    const double truth = signal > 0 ? 1.0 : -1.0;
    if (raw.predict(query)[0] * truth > 0) ++raw_correct;
    if (standardized.predict(query)[0] * truth > 0) ++std_correct;
  }
  EXPECT_GT(std_correct, 90);
  EXPECT_GT(std_correct, raw_correct);
}

TEST(Knn, PredictBeforeFitThrows) {
  KNNRegressor knn;
  EXPECT_THROW(knn.predict(std::vector<double>{1.0}), bd::CheckError);
}

TEST(Knn, PredictIntoValidatesSizes) {
  Dataset d(1, 2);
  d.add(std::vector<double>{0.0}, std::vector<double>{1.0, 2.0});
  KNNRegressor knn(KnnConfig{.k = 1});
  knn.fit(d);
  std::vector<double> wrong(1);
  EXPECT_THROW(knn.predict_into(std::vector<double>{0.0}, wrong),
               bd::CheckError);
}

}  // namespace
}  // namespace bd::ml
