/// Tests for the partition algebra (MERGE-LISTS and the §III-C2
/// pattern↔partition transforms' building blocks).

#include <gtest/gtest.h>

#include "quad/partition.hpp"
#include "util/check.hpp"

namespace bd::quad {
namespace {

TEST(Partition, MergeSortedUnique) {
  const std::vector<double> a{0.0, 1.0, 2.0};
  const std::vector<double> b{0.5, 1.0, 3.0};
  const std::vector<double> m = merge_partitions(a, b);
  EXPECT_EQ(m, (std::vector<double>{0.0, 0.5, 1.0, 2.0, 3.0}));
}

TEST(Partition, MergeWithEmpty) {
  const std::vector<double> a{0.0, 1.0};
  EXPECT_EQ(merge_partitions(a, {}), a);
  EXPECT_EQ(merge_partitions({}, a), a);
}

TEST(Partition, MergeEpsilonDeduplicates) {
  const std::vector<double> a{0.0, 1.0};
  const std::vector<double> b{1.0 + 1e-15};
  const std::vector<double> m = merge_partitions(a, b, 1e-12);
  EXPECT_EQ(m.size(), 2u);
}

TEST(Partition, MergeOfDyadicPartitionsNests) {
  // Dyadic partitions of the same interval: the union equals the finer
  // one — the property the pow2-rounding of COMPUTE-PARTITION exploits.
  std::vector<double> coarse, fine;
  for (int i = 0; i <= 4; ++i) coarse.push_back(i / 4.0);
  for (int i = 0; i <= 8; ++i) fine.push_back(i / 8.0);
  const std::vector<double> m = merge_partitions(coarse, fine);
  EXPECT_EQ(m, fine);
}

TEST(Partition, CountPerSubregionAttributesByMidpoint) {
  // Subregions of width 1: [0,1), [1,2), [2,3).
  const std::vector<double> breaks{0.0, 0.25, 0.5, 1.0, 2.0, 2.5, 3.0};
  const auto counts = count_per_subregion(breaks, 1.0, 3);
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{3, 1, 2}));
}

TEST(Partition, CountPerSubregionClampsOverhang) {
  const std::vector<double> breaks{0.0, 5.0};
  const auto counts = count_per_subregion(breaks, 1.0, 2);
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{0, 1}));
}

TEST(Partition, CountHandlesDegenerateInputs) {
  EXPECT_EQ(count_per_subregion({}, 1.0, 3),
            (std::vector<std::uint32_t>{0, 0, 0}));
  EXPECT_EQ(count_per_subregion({0.5}, 1.0, 2),
            (std::vector<std::uint32_t>{0, 0}));
}

TEST(Partition, FromCountsProducesRequestedStructure) {
  const std::vector<std::uint32_t> counts{2, 1, 4};
  const std::vector<double> breaks = partition_from_counts(counts, 1.0, 3.0);
  EXPECT_TRUE(is_valid_partition(breaks));
  EXPECT_DOUBLE_EQ(breaks.front(), 0.0);
  EXPECT_DOUBLE_EQ(breaks.back(), 3.0);
  EXPECT_EQ(count_per_subregion(breaks, 1.0, 3),
            (std::vector<std::uint32_t>{2, 1, 4}));
}

TEST(Partition, FromCountsClipsAtRmax) {
  const std::vector<std::uint32_t> counts{2, 2, 2, 2};
  const std::vector<double> breaks = partition_from_counts(counts, 1.0, 2.5);
  EXPECT_DOUBLE_EQ(breaks.back(), 2.5);
  EXPECT_TRUE(is_valid_partition(breaks));
}

TEST(Partition, FromCountsZeroBecomesOne) {
  const std::vector<std::uint32_t> counts{0, 0};
  const std::vector<double> breaks = partition_from_counts(counts, 1.0, 2.0);
  EXPECT_EQ(breaks, (std::vector<double>{0.0, 1.0, 2.0}));
}

TEST(Partition, RefineSubdividesPreviousIntervals) {
  // Previous: one interval per unit subregion; target 2 in each.
  const std::vector<double> previous{0.0, 1.0, 2.0};
  const std::vector<std::uint32_t> counts{2, 4};
  const std::vector<double> refined =
      refine_partition(previous, counts, 1.0, 2.0);
  EXPECT_TRUE(is_valid_partition(refined));
  const auto c = count_per_subregion(refined, 1.0, 2);
  EXPECT_GE(c[0], 2u);
  EXPECT_GE(c[1], 4u);
}

TEST(Partition, RefineFallsBackWithoutPrevious) {
  const std::vector<std::uint32_t> counts{2, 2};
  const std::vector<double> refined = refine_partition({}, counts, 1.0, 2.0);
  EXPECT_EQ(refined, partition_from_counts(counts, 1.0, 2.0));
}

TEST(Partition, ClipInsertsEndpoints) {
  const std::vector<double> breaks{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> clipped = clip_partition(breaks, 0.5, 2.5);
  EXPECT_EQ(clipped, (std::vector<double>{0.5, 1.0, 2.0, 2.5}));
}

TEST(Partition, ClipNonOverlappingIsEmpty) {
  const std::vector<double> breaks{0.0, 1.0};
  EXPECT_TRUE(clip_partition(breaks, 2.0, 3.0).empty());
  EXPECT_TRUE(clip_partition({}, 0.0, 1.0).empty());
}

TEST(Partition, IsValidPartitionChecksOrdering) {
  const auto valid = [](std::initializer_list<double> breaks) {
    return is_valid_partition(std::vector<double>(breaks));
  };
  EXPECT_TRUE(valid({0.0, 1.0}));
  EXPECT_FALSE(valid({0.0}));
  EXPECT_FALSE(valid({0.0, 0.0}));
  EXPECT_FALSE(valid({1.0, 0.0}));
}

// Property: for any counts vector, the generated partition is valid and
// reproduces the counts (when not clipped).
class CountsRoundTrip
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(CountsRoundTrip, RoundTrips) {
  const auto counts = GetParam();
  const double sub_width = 0.7;
  const double r_max = sub_width * static_cast<double>(counts.size());
  const std::vector<double> breaks =
      partition_from_counts(counts, sub_width, r_max);
  EXPECT_TRUE(is_valid_partition(breaks));
  const auto round_trip = count_per_subregion(
      breaks, sub_width, static_cast<std::uint32_t>(counts.size()));
  for (std::size_t j = 0; j < counts.size(); ++j) {
    EXPECT_EQ(round_trip[j], std::max<std::uint32_t>(1, counts[j])) << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CountsRoundTrip,
    ::testing::Values(std::vector<std::uint32_t>{1},
                      std::vector<std::uint32_t>{4, 2, 1},
                      std::vector<std::uint32_t>{8, 8, 8, 8},
                      std::vector<std::uint32_t>{1, 16, 2, 32, 4},
                      std::vector<std::uint32_t>{0, 3, 0, 7}));

}  // namespace
}  // namespace bd::quad
