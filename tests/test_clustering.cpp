/// Tests for RP-CLUSTERING (flat, tiled, chunked and ordered variants).

#include <gtest/gtest.h>

#include <set>

#include "core/clustering.hpp"
#include "util/check.hpp"

namespace bd::core {
namespace {

/// Pattern field with two distinct pattern populations split by x.
PatternField bimodal_patterns(std::size_t nx, std::size_t ny) {
  PatternField field(nx * ny, 2);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      auto p = field.at(iy * nx + ix);
      if (ix < nx / 2) {
        p[0] = 2.0;
        p[1] = 1.0;
      } else {
        p[0] = 16.0;
        p[1] = 8.0;
      }
    }
  }
  return field;
}

std::size_t total_members(const ClusterAssignment& a) {
  std::size_t total = 0;
  for (const auto& m : a.members) total += m.size();
  return total;
}

TEST(RpClustering, EveryPointAssignedOnce) {
  const PatternField patterns = bimodal_patterns(8, 8);
  RpClusteringOptions options;
  options.clusters = 4;
  options.spatial_weight = 0.0;
  const ClusterAssignment a = rp_clustering(patterns, {}, {}, options);
  EXPECT_EQ(total_members(a), 64u);
  std::set<std::uint32_t> seen;
  for (const auto& m : a.members) seen.insert(m.begin(), m.end());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RpClustering, BalancedCapsClusterSize) {
  const PatternField patterns = bimodal_patterns(8, 8);
  RpClusteringOptions options;
  options.clusters = 4;
  options.balanced = true;
  options.spatial_weight = 0.0;
  const ClusterAssignment a = rp_clustering(patterns, {}, {}, options);
  EXPECT_LE(a.max_cluster_size, 16u);
}

TEST(RpClustering, SeparatesDistinctPatternPopulations) {
  const PatternField patterns = bimodal_patterns(8, 8);
  RpClusteringOptions options;
  options.clusters = 2;
  options.balanced = true;
  options.spatial_weight = 0.0;
  options.train_subsample = 64;
  const ClusterAssignment a = rp_clustering(patterns, {}, {}, options);
  // Points 0..3 of a row (left half) should share a cluster distinct from
  // points 4..7 (right half).
  for (const auto& members : a.members) {
    bool has_left = false, has_right = false;
    for (std::uint32_t p : members) {
      if (p % 8 < 4) has_left = true;
      else has_right = true;
    }
    EXPECT_FALSE(has_left && has_right);
  }
}

TEST(RpClustering, MembersAscendWithinCluster) {
  const PatternField patterns = bimodal_patterns(8, 8);
  RpClusteringOptions options;
  options.clusters = 4;
  options.spatial_weight = 0.0;
  const ClusterAssignment a = rp_clustering(patterns, {}, {}, options);
  for (const auto& m : a.members) {
    for (std::size_t i = 1; i < m.size(); ++i) EXPECT_GT(m[i], m[i - 1]);
  }
}

TEST(RpClusteringTiled, WarpsAreSpatialTiles) {
  const beam::GridSpec spec = beam::make_centered_grid(16, 16, 1.0, 1.0);
  PatternField patterns(spec.nodes(), 2);
  TiledClusteringOptions options;
  options.clusters = 8;
  options.tile_w = 8;
  options.tile_h = 4;
  const ClusterAssignment a = rp_clustering_tiled(patterns, spec, options);
  EXPECT_EQ(total_members(a), 256u);
  // Each run of 32 consecutive members is one 8×4 spatial tile.
  for (const auto& members : a.members) {
    ASSERT_EQ(members.size() % 32, 0u);
    for (std::size_t w = 0; w + 32 <= members.size(); w += 32) {
      std::uint32_t min_x = 16, max_x = 0, min_y = 16, max_y = 0;
      for (std::size_t i = 0; i < 32; ++i) {
        const std::uint32_t p = members[w + i];
        const std::uint32_t ix = p % 16, iy = p / 16;
        min_x = std::min(min_x, ix);
        max_x = std::max(max_x, ix);
        min_y = std::min(min_y, iy);
        max_y = std::max(max_y, iy);
      }
      EXPECT_LE(max_x - min_x, 7u);
      EXPECT_LE(max_y - min_y, 3u);
    }
  }
}

TEST(RpClusteringTiled, GroupsTilesByPatternSimilarity) {
  const beam::GridSpec spec = beam::make_centered_grid(16, 16, 1.0, 1.0);
  PatternField patterns(spec.nodes(), 1);
  // Left half tiles cheap, right half expensive.
  for (std::uint32_t iy = 0; iy < 16; ++iy) {
    for (std::uint32_t ix = 0; ix < 16; ++ix) {
      patterns.at(iy * 16 + ix)[0] = ix < 8 ? 1.0 : 32.0;
    }
  }
  TiledClusteringOptions options;
  options.clusters = 2;
  options.tile_w = 8;
  options.tile_h = 4;
  options.spatial_weight = 0.0;  // isolate the pattern-similarity grouping
  const ClusterAssignment a = rp_clustering_tiled(patterns, spec, options);
  for (const auto& members : a.members) {
    if (members.empty()) continue;
    const bool left = (members[0] % 16) < 8;
    for (std::uint32_t p : members) EXPECT_EQ((p % 16) < 8, left);
  }
}

TEST(RpClusteringTiled, RaggedGridsHandled) {
  const beam::GridSpec spec = beam::make_centered_grid(10, 6, 1.0, 1.0);
  PatternField patterns(spec.nodes(), 1);
  TiledClusteringOptions options;
  options.clusters = 3;
  options.tile_w = 8;
  options.tile_h = 4;
  const ClusterAssignment a = rp_clustering_tiled(patterns, spec, options);
  EXPECT_EQ(total_members(a), 60u);
}

TEST(ChunkClustering, RowMajorChunks) {
  const ClusterAssignment a = chunk_clustering(10, 4);
  ASSERT_EQ(a.members.size(), 3u);
  EXPECT_EQ(a.members[0], (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(a.members[2], (std::vector<std::uint32_t>{8, 9}));
  EXPECT_EQ(a.max_cluster_size, 4u);
}

TEST(OrderedClustering, FollowsPermutation) {
  const std::vector<std::uint32_t> order{5, 3, 1, 0, 2, 4};
  const ClusterAssignment a = ordered_clustering(order, 3);
  ASSERT_EQ(a.members.size(), 2u);
  EXPECT_EQ(a.members[0], (std::vector<std::uint32_t>{5, 3, 1}));
  EXPECT_EQ(a.members[1], (std::vector<std::uint32_t>{0, 2, 4}));
}

TEST(Clustering, ValidatesArguments) {
  EXPECT_THROW(chunk_clustering(0, 4), bd::CheckError);
  EXPECT_THROW(chunk_clustering(4, 0), bd::CheckError);
  EXPECT_THROW(ordered_clustering({}, 3), bd::CheckError);
  PatternField empty;
  RpClusteringOptions options;
  EXPECT_THROW(rp_clustering(empty, {}, {}, options), bd::CheckError);
}

}  // namespace
}  // namespace bd::core
