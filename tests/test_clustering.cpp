/// Tests for RP-CLUSTERING (flat, tiled, chunked and ordered variants).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/clustering.hpp"
#include "ml/coreset.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bd::core {
namespace {

/// Pattern field with two distinct pattern populations split by x.
PatternField bimodal_patterns(std::size_t nx, std::size_t ny) {
  PatternField field(nx * ny, 2);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      auto p = field.at(iy * nx + ix);
      if (ix < nx / 2) {
        p[0] = 2.0;
        p[1] = 1.0;
      } else {
        p[0] = 16.0;
        p[1] = 8.0;
      }
    }
  }
  return field;
}

std::size_t total_members(const ClusterAssignment& a) {
  std::size_t total = 0;
  for (const auto& m : a.members) total += m.size();
  return total;
}

TEST(RpClustering, EveryPointAssignedOnce) {
  const PatternField patterns = bimodal_patterns(8, 8);
  RpClusteringOptions options;
  options.clusters = 4;
  options.spatial_weight = 0.0;
  const ClusterAssignment a = rp_clustering(patterns, {}, {}, options);
  EXPECT_EQ(total_members(a), 64u);
  std::set<std::uint32_t> seen;
  for (const auto& m : a.members) seen.insert(m.begin(), m.end());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RpClustering, BalancedCapsClusterSize) {
  const PatternField patterns = bimodal_patterns(8, 8);
  RpClusteringOptions options;
  options.clusters = 4;
  options.balanced = true;
  options.spatial_weight = 0.0;
  const ClusterAssignment a = rp_clustering(patterns, {}, {}, options);
  EXPECT_LE(a.max_cluster_size, 16u);
}

TEST(RpClustering, SeparatesDistinctPatternPopulations) {
  const PatternField patterns = bimodal_patterns(8, 8);
  RpClusteringOptions options;
  options.clusters = 2;
  options.balanced = true;
  options.spatial_weight = 0.0;
  options.train_subsample = 64;
  const ClusterAssignment a = rp_clustering(patterns, {}, {}, options);
  // Points 0..3 of a row (left half) should share a cluster distinct from
  // points 4..7 (right half).
  for (const auto& members : a.members) {
    bool has_left = false, has_right = false;
    for (std::uint32_t p : members) {
      if (p % 8 < 4) has_left = true;
      else has_right = true;
    }
    EXPECT_FALSE(has_left && has_right);
  }
}

TEST(RpClustering, MembersAscendWithinCluster) {
  const PatternField patterns = bimodal_patterns(8, 8);
  RpClusteringOptions options;
  options.clusters = 4;
  options.spatial_weight = 0.0;
  const ClusterAssignment a = rp_clustering(patterns, {}, {}, options);
  for (const auto& m : a.members) {
    for (std::size_t i = 1; i < m.size(); ++i) EXPECT_GT(m[i], m[i - 1]);
  }
}

TEST(RpClusteringTiled, WarpsAreSpatialTiles) {
  const beam::GridSpec spec = beam::make_centered_grid(16, 16, 1.0, 1.0);
  PatternField patterns(spec.nodes(), 2);
  TiledClusteringOptions options;
  options.clusters = 8;
  options.tile_w = 8;
  options.tile_h = 4;
  const ClusterAssignment a = rp_clustering_tiled(patterns, spec, options);
  EXPECT_EQ(total_members(a), 256u);
  // Each run of 32 consecutive members is one 8×4 spatial tile.
  for (const auto& members : a.members) {
    ASSERT_EQ(members.size() % 32, 0u);
    for (std::size_t w = 0; w + 32 <= members.size(); w += 32) {
      std::uint32_t min_x = 16, max_x = 0, min_y = 16, max_y = 0;
      for (std::size_t i = 0; i < 32; ++i) {
        const std::uint32_t p = members[w + i];
        const std::uint32_t ix = p % 16, iy = p / 16;
        min_x = std::min(min_x, ix);
        max_x = std::max(max_x, ix);
        min_y = std::min(min_y, iy);
        max_y = std::max(max_y, iy);
      }
      EXPECT_LE(max_x - min_x, 7u);
      EXPECT_LE(max_y - min_y, 3u);
    }
  }
}

TEST(RpClusteringTiled, GroupsTilesByPatternSimilarity) {
  const beam::GridSpec spec = beam::make_centered_grid(16, 16, 1.0, 1.0);
  PatternField patterns(spec.nodes(), 1);
  // Left half tiles cheap, right half expensive.
  for (std::uint32_t iy = 0; iy < 16; ++iy) {
    for (std::uint32_t ix = 0; ix < 16; ++ix) {
      patterns.at(iy * 16 + ix)[0] = ix < 8 ? 1.0 : 32.0;
    }
  }
  TiledClusteringOptions options;
  options.clusters = 2;
  options.tile_w = 8;
  options.tile_h = 4;
  options.spatial_weight = 0.0;  // isolate the pattern-similarity grouping
  const ClusterAssignment a = rp_clustering_tiled(patterns, spec, options);
  for (const auto& members : a.members) {
    if (members.empty()) continue;
    const bool left = (members[0] % 16) < 8;
    for (std::uint32_t p : members) EXPECT_EQ((p % 16) < 8, left);
  }
}

TEST(RpClusteringTiled, RaggedGridsHandled) {
  const beam::GridSpec spec = beam::make_centered_grid(10, 6, 1.0, 1.0);
  PatternField patterns(spec.nodes(), 1);
  TiledClusteringOptions options;
  options.clusters = 3;
  options.tile_w = 8;
  options.tile_h = 4;
  const ClusterAssignment a = rp_clustering_tiled(patterns, spec, options);
  EXPECT_EQ(total_members(a), 60u);
}

TEST(ChunkClustering, RowMajorChunks) {
  const ClusterAssignment a = chunk_clustering(10, 4);
  ASSERT_EQ(a.members.size(), 3u);
  EXPECT_EQ(a.members[0], (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(a.members[2], (std::vector<std::uint32_t>{8, 9}));
  EXPECT_EQ(a.max_cluster_size, 4u);
}

TEST(OrderedClustering, FollowsPermutation) {
  const std::vector<std::uint32_t> order{5, 3, 1, 0, 2, 4};
  const ClusterAssignment a = ordered_clustering(order, 3);
  ASSERT_EQ(a.members.size(), 2u);
  EXPECT_EQ(a.members[0], (std::vector<std::uint32_t>{5, 3, 1}));
  EXPECT_EQ(a.members[1], (std::vector<std::uint32_t>{0, 2, 4}));
}

TEST(Clustering, ValidatesArguments) {
  EXPECT_THROW(chunk_clustering(0, 4), bd::CheckError);
  EXPECT_THROW(chunk_clustering(4, 0), bd::CheckError);
  EXPECT_THROW(ordered_clustering({}, 3), bd::CheckError);
  PatternField empty;
  RpClusteringOptions options;
  EXPECT_THROW(rp_clustering(empty, {}, {}, options), bd::CheckError);
}

// ---------------------------------------------------------------------------
// D² coresets
// ---------------------------------------------------------------------------

/// Synthetic feature matrix: smooth gradient plus a hot corner (the few
/// high-variance rows a D² sampler must concentrate on).
std::vector<double> gradient_features(std::size_t n, std::size_t dim) {
  std::vector<double> features(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = static_cast<double>(i) / static_cast<double>(n);
    for (std::size_t d = 0; d < dim; ++d) {
      features[i * dim + d] = base + (i > n - n / 16 ? 50.0 : 0.0);
    }
  }
  return features;
}

TEST(Coreset, SmallInputsPassThrough) {
  const std::vector<double> features = gradient_features(100, 3);
  ml::CoresetConfig config;
  config.target_size = 256;
  const ml::Coreset c = ml::d2_coreset(features, 100, 3, config);
  EXPECT_EQ(c.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(c.indices[i], i);
    EXPECT_EQ(c.weights[i], 1.0);
  }
}

TEST(Coreset, WeightsEstimateTheFullSetScale) {
  const std::size_t n = 8192;
  const std::vector<double> features = gradient_features(n, 4);
  ml::CoresetConfig config;
  config.target_size = 512;
  const ml::Coreset c = ml::d2_coreset(features, n, 4, config);
  EXPECT_LE(c.size(), 512u);
  EXPECT_GE(c.size(), 32u);
  // Indices are distinct and ascending; weights are positive and sum to
  // roughly n (the unbiased-estimate property the weighted objective
  // relies on).
  double total = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(c.indices[i], c.indices[i - 1]);
    }
    EXPECT_GT(c.weights[i], 0.0);
    total += c.weights[i];
  }
  EXPECT_GT(total, 0.5 * static_cast<double>(n));
  EXPECT_LT(total, 2.0 * static_cast<double>(n));
}

TEST(Coreset, MinSizeTopsUpDistinctIndices) {
  const std::size_t n = 4096;
  const std::vector<double> features = gradient_features(n, 2);
  ml::CoresetConfig config;
  config.target_size = 8;  // few draws, heavy duplication expected
  config.min_size = 16;
  const ml::Coreset c = ml::d2_coreset(features, n, 2, config);
  EXPECT_GE(c.size(), 16u);
  std::set<std::uint32_t> distinct(c.indices.begin(), c.indices.end());
  EXPECT_EQ(distinct.size(), c.size());
}

TEST(Coreset, DeterministicAcrossThreadCounts) {
  const std::size_t n = 10000;
  const std::vector<double> features = gradient_features(n, 5);
  ml::CoresetConfig config;
  config.target_size = 300;

  util::ThreadPool::set_global_threads(1);
  const ml::Coreset serial = ml::d2_coreset(features, n, 5, config);
  util::ThreadPool::set_global_threads(8);
  const ml::Coreset parallel = ml::d2_coreset(features, n, 5, config);
  util::ThreadPool::set_global_threads(0);

  EXPECT_EQ(serial.indices, parallel.indices);
  EXPECT_EQ(serial.weights, parallel.weights);  // bitwise
}

// ---------------------------------------------------------------------------
// Coreset-accelerated / warm-started clustering
// ---------------------------------------------------------------------------

/// Pattern field with a smooth radial cost structure plus noise — large
/// enough that the accelerated path actually subsamples.
PatternField radial_patterns(std::size_t nx, std::size_t ny,
                             std::uint64_t seed, double drift = 0.0) {
  util::Rng rng(seed);
  PatternField field(nx * ny, 3);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double cx = static_cast<double>(ix) / static_cast<double>(nx) -
                        0.5 + drift;
      const double cy =
          static_cast<double>(iy) / static_cast<double>(ny) - 0.5;
      const double r = std::sqrt(cx * cx + cy * cy);
      auto p = field.at(iy * nx + ix);
      p[0] = 4.0 + 28.0 * std::exp(-8.0 * r * r) + rng.uniform();
      p[1] = 2.0 + 10.0 * r + rng.uniform();
      p[2] = 1.0 + p[0] * 0.25;
    }
  }
  return field;
}

TEST(ClusteringAccel, InertiaWithinBoundOfFullTraining) {
  // The coreset path trains on ~512 weighted samples instead of the full
  // stride subsample; the full-set inertia of its final assignment must
  // stay within a modest factor of the reference path's.
  const PatternField patterns = radial_patterns(96, 96, 11);
  RpClusteringOptions reference;
  reference.clusters = 16;
  reference.spatial_weight = 0.0;
  reference.train_subsample = 96 * 96;  // full-set Lloyd reference
  const ClusterAssignment base = rp_clustering(patterns, {}, {}, reference);
  EXPECT_EQ(base.coreset_size, 0u);

  RpClusteringOptions accel = reference;
  accel.accel.enabled = true;
  accel.accel.coreset_size = 512;
  const ClusterAssignment fast = rp_clustering(patterns, {}, {}, accel);
  EXPECT_GT(fast.coreset_size, 0u);
  EXPECT_LE(fast.coreset_size, 512u);
  EXPECT_GT(base.inertia, 0.0);
  EXPECT_LE(fast.inertia, base.inertia * 1.25)
      << "coreset-trained clustering lost too much quality";
}

TEST(ClusteringAccel, WarmStartReusesCachedCentroids) {
  const beam::GridSpec spec = beam::make_centered_grid(64, 64, 1.0, 1.0);
  ClusteringCache cache;
  TiledClusteringOptions options;
  options.clusters = 8;
  options.accel.enabled = true;
  options.accel.coreset_size = 256;
  options.accel.cache = &cache;

  const PatternField step0 = radial_patterns(64, 64, 21);
  const ClusterAssignment first = rp_clustering_tiled(step0, spec, options);
  EXPECT_FALSE(first.warm_started);  // cold cache
  EXPECT_TRUE(cache.valid());

  // Slightly drifted patterns: the cached centroids are good seeds.
  const PatternField step1 = radial_patterns(64, 64, 21, 0.01);
  const ClusterAssignment second = rp_clustering_tiled(step1, spec, options);
  EXPECT_TRUE(second.warm_started);

  // A cache of the wrong shape is ignored, not misused.
  cache.dim = cache.dim + 1;
  const ClusterAssignment third = rp_clustering_tiled(step1, spec, options);
  EXPECT_FALSE(third.warm_started);
}

TEST(ClusteringAccel, DeterministicAcrossThreadCounts) {
  const PatternField patterns = radial_patterns(64, 64, 31);
  RpClusteringOptions options;
  options.clusters = 8;
  options.spatial_weight = 0.0;
  options.accel.enabled = true;
  options.accel.coreset_size = 256;

  util::ThreadPool::set_global_threads(1);
  const ClusterAssignment serial = rp_clustering(patterns, {}, {}, options);
  util::ThreadPool::set_global_threads(8);
  const ClusterAssignment parallel = rp_clustering(patterns, {}, {}, options);
  util::ThreadPool::set_global_threads(0);

  EXPECT_EQ(serial.members, parallel.members);
  EXPECT_EQ(serial.inertia, parallel.inertia);  // bitwise
  EXPECT_EQ(serial.kmeans_iterations, parallel.kmeans_iterations);
}

}  // namespace
}  // namespace bd::core
