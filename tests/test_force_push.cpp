/// Tests for the force gather and the leap-frog pusher.

#include <gtest/gtest.h>

#include "beam/force.hpp"
#include "beam/push.hpp"
#include "util/check.hpp"

namespace bd::beam {
namespace {

TEST(ForceGather, TscReproducesLinearField) {
  const GridSpec spec = make_centered_grid(17, 17, 4.0, 4.0);
  Grid2D field(spec);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      field.at(ix, iy) = 2.0 * spec.x_at(ix) - spec.y_at(iy);
    }
  }
  ParticleSet p(3);
  p.s()[0] = 0.3;  p.y()[0] = -1.1;
  p.s()[1] = -2.4; p.y()[1] = 0.0;
  p.s()[2] = 1.7;  p.y()[2] = 2.9;
  std::vector<double> out(3);
  gather_forces(field, p, out);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(out[i], 2.0 * p.s()[i] - p.y()[i], 1e-10);
  }
}

TEST(ForceGather, ZeroOutsideInterpolableRegion) {
  const GridSpec spec = make_centered_grid(9, 9, 1.0, 1.0);
  Grid2D field(spec);
  field.fill(3.0);
  EXPECT_DOUBLE_EQ(interpolate_tsc(field, 5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(interpolate_tsc(field, 0.0, -5.0), 0.0);
  // On the outermost node the 3-point stencil would leave the grid.
  EXPECT_DOUBLE_EQ(interpolate_tsc(field, 1.0, 1.0), 0.0);
}

TEST(ForceGather, SizeMismatchThrows) {
  const GridSpec spec = make_centered_grid(5, 5, 1.0, 1.0);
  Grid2D field(spec);
  ParticleSet p(4);
  std::vector<double> out(3);
  EXPECT_THROW(gather_forces(field, p, out), bd::CheckError);
}

TEST(Push, ConstantForceKicksAndDrifts) {
  ParticleSet p(1);
  const std::vector<double> fs{2.0};
  const std::vector<double> fy{-1.0};
  leapfrog_push(p, fs, fy, 0.5);
  EXPECT_DOUBLE_EQ(p.ps()[0], 1.0);   // 2.0 * 0.5
  EXPECT_DOUBLE_EQ(p.py()[0], -0.5);
  EXPECT_DOUBLE_EQ(p.s()[0], 0.5);    // drift with updated momentum
  EXPECT_DOUBLE_EQ(p.y()[0], -0.25);
}

TEST(Push, FreeStreamingWithoutForce) {
  ParticleSet p(1);
  p.ps()[0] = 3.0;
  leapfrog_push(p, {}, {}, 1.0);
  EXPECT_DOUBLE_EQ(p.s()[0], 3.0);
  EXPECT_DOUBLE_EQ(p.ps()[0], 3.0);
  EXPECT_DOUBLE_EQ(p.y()[0], 0.0);
}

TEST(Push, HarmonicOscillatorEnergyNearlyConserved) {
  // F = -k x integrated with leap-frog: bounded energy over many periods.
  ParticleSet p(1);
  p.s()[0] = 1.0;
  const double dt = 0.05;
  const double k = 1.0;
  std::vector<double> fs(1);
  double max_energy = 0.0, min_energy = 1e300;
  for (int step = 0; step < 2000; ++step) {
    fs[0] = -k * p.s()[0];
    leapfrog_push(p, fs, {}, dt);
    const double energy =
        0.5 * p.ps()[0] * p.ps()[0] + 0.5 * k * p.s()[0] * p.s()[0];
    max_energy = std::max(max_energy, energy);
    min_energy = std::min(min_energy, energy);
  }
  EXPECT_LT(max_energy / min_energy, 1.2);  // symplectic: no secular drift
}

TEST(Push, RigidPushIsNoOp) {
  ParticleSet p(2);
  p.s()[0] = 1.0;
  p.ps()[1] = 2.0;
  rigid_push(p, 1.0);
  EXPECT_DOUBLE_EQ(p.s()[0], 1.0);
  EXPECT_DOUBLE_EQ(p.s()[1], 0.0);
}

TEST(Push, ForceSizeMismatchThrows) {
  ParticleSet p(3);
  const std::vector<double> wrong(2, 0.0);
  EXPECT_THROW(leapfrog_push(p, wrong, {}, 0.1), bd::CheckError);
}

}  // namespace
}  // namespace bd::beam
