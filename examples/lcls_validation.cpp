/// \file lcls_validation.cpp
/// The paper's validation scenario (§V-A): the 1-D monochromatic rigid
/// Gaussian bunch — the normalized equivalent of the LCLS bend
/// (R0 = 25.13 m, θ_b = 11.4°, σ_s = 50 µm, Q = 1 nC). Runs the full
/// pipeline with the Predictive-RP solver, prints computed vs analytic
/// longitudinal/transverse forces and the per-particle mean-square error.

#include <cmath>
#include <cstdio>

#include "beam/analytic.hpp"
#include "beam/force.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("lcls_validation",
                       "rigid-bunch validation against the analytic wake");
  args.add_int("particles", 200000, "macro-particles");
  args.add_int("grid", 64, "grid resolution");
  args.add_int("steps", 2, "steps to run (rigid bunch: stationary)");
  if (!args.parse(argc, argv)) return 0;

  const beam::LclsBend bend;  // physical parameters, for the record
  std::printf(
      "LCLS-bend validation (normalized units): R0 = %.2f m, theta_b = %.1f"
      " deg, sigma_s = %.0f um, Q = %.0f nC\n\n",
      bend.bend_radius_m, bend.bend_angle_deg, bend.sigma_s_m * 1e6,
      bend.charge_nC);

  core::SimConfig config;
  config.particles = static_cast<std::size_t>(args.get_int("particles"));
  config.nx = static_cast<std::uint32_t>(args.get_int("grid"));
  config.ny = config.nx;
  config.rigid = true;
  config.compute_transverse = true;

  const simt::DeviceSpec device = simt::tesla_k40();
  core::Simulation sim(config,
                       std::make_unique<core::PredictiveSolver>(device),
                       std::make_unique<core::PredictiveSolver>(device));
  sim.initialize();
  for (int k = 0; k < args.get_int("steps"); ++k) sim.step();

  // Forces along the beam axis.
  const beam::GridSpec& spec = sim.force_s().spec();
  const std::uint32_t iy = spec.ny / 2;
  std::printf("%8s  %13s %13s  |  %13s %13s (at y=%.2f)\n", "s",
              "F_par comp", "F_par exact", "F_perp comp", "F_perp exact",
              spec.y_at(3 * spec.ny / 4));
  for (std::uint32_t ix = 4; ix + 4 < spec.nx; ix += spec.nx / 12) {
    const double s = spec.x_at(ix);
    std::printf("%8.3f  %13.6e %13.6e  |  %13.6e %13.6e\n", s,
                sim.force_s().at(ix, iy),
                beam::analytic_force(s, 0.0, config.longitudinal, config.beam,
                                     12.0, 1e-10),
                sim.force_y().at(ix, 3 * spec.ny / 4),
                beam::analytic_force(s, spec.y_at(3 * spec.ny / 4),
                                     config.transverse, config.beam, 12.0,
                                     1e-10));
  }

  // Per-particle mean-square error (the paper's ε).
  std::vector<double> computed(sim.particles().size());
  beam::gather_forces(sim.force_s(), sim.particles(), computed);
  double mse = 0.0;
  const auto s = sim.particles().s();
  const auto y = sim.particles().y();
  for (std::size_t i = 0; i < computed.size(); ++i) {
    const double exact = beam::analytic_force(
        s[i], y[i], config.longitudinal, config.beam, 12.0, 1e-9);
    mse += (computed[i] - exact) * (computed[i] - exact);
  }
  mse /= static_cast<double>(computed.size());
  std::printf("\nper-particle longitudinal force MSE: %.3e (N = %zu)\n", mse,
              computed.size());
  return 0;
}
