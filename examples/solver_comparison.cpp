/// \file solver_comparison.cpp
/// Side-by-side run of the three rp-solvers the paper compares — Two-Phase
/// [9], Heuristic [10] and Predictive (the contribution) — on an identical
/// evolving-beam workload, printing the profiler-style metrics of Table I
/// per step.

#include <cstdio>
#include <memory>

#include "baselines/heuristic.hpp"
#include "baselines/two_phase.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "simt/report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

std::unique_ptr<bd::core::RpSolver> make_solver(const std::string& kind) {
  using namespace bd;
  const simt::DeviceSpec device = simt::tesla_k40();
  if (kind == "two-phase") {
    return std::make_unique<baselines::TwoPhaseSolver>(device);
  }
  if (kind == "heuristic") {
    return std::make_unique<baselines::HeuristicSolver>(device);
  }
  return std::make_unique<bd::core::PredictiveSolver>(device);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("solver_comparison",
                       "Two-Phase vs Heuristic vs Predictive rp-solvers");
  args.add_int("particles", 50000, "number of macro-particles");
  args.add_int("grid", 64, "grid resolution (N_X = N_Y)");
  args.add_int("steps", 4, "simulation steps per solver");
  args.add_double("tolerance", 1e-6, "rp-integral error tolerance");
  args.add_flag("rigid", "freeze the bunch (validation workload)");
  if (!args.parse(argc, argv)) return 0;

  util::ConsoleTable table(
      {"solver", "step", "intervals", "fallback", "warp eff %", "gld eff %",
       "L1 hit %", "AI", "GFlop/s", "GPU time (ms)", "overall (ms)"});
  std::vector<simt::KernelReportEntry> final_step;

  for (const std::string kind : {"two-phase", "heuristic", "predictive"}) {
    core::SimConfig config;
    config.particles = static_cast<std::size_t>(args.get_int("particles"));
    config.nx = static_cast<std::uint32_t>(args.get_int("grid"));
    config.ny = config.nx;
    config.tolerance = args.get_double("tolerance");
    config.rigid = args.get_flag("rigid");

    core::Simulation sim(config, make_solver(kind));
    sim.initialize();
    for (int k = 0; k < args.get_int("steps"); ++k) {
      const core::StepStats stats = sim.step();
      const core::SolveResult& r = stats.longitudinal;
      const auto& m = r.metrics;
      if (k + 1 == args.get_int("steps")) {
        final_step.push_back(simt::KernelReportEntry{kind, m});
      }
      table.cell(kind)
          .cell(static_cast<std::int64_t>(stats.step))
          .cell(static_cast<std::int64_t>(r.kernel_intervals))
          .cell(static_cast<std::int64_t>(r.fallback_items))
          .cell(m.warp_execution_efficiency() * 100.0, 1)
          .cell(m.global_load_efficiency() * 100.0, 1)
          .cell(m.l1_hit_rate() * 100.0, 1)
          .cell(m.arithmetic_intensity(), 2)
          .cell(m.gflops(), 0)
          .cell(r.gpu_seconds * 1e3, 3)
          .cell(r.overall_seconds() * 1e3, 3);
      table.end_row();
    }
  }
  table.print();

  std::printf("\nprofiler view of the final step:\n");
  std::fputs(
      simt::comparison_report(final_step, simt::tesla_k40()).c_str(),
      stdout);
  return 0;
}
