/// \file quickstart.cpp
/// Minimal end-to-end use of the library: build a simulation with the
/// Predictive-RP solver, run a few steps, and print per-step solver
/// statistics plus a validation snapshot against the analytic wake.
///
/// With `--journal <dir>` the run goes through the fleet supervisor
/// instead: the job is journaled and checkpointed into <dir>, a step
/// failure is retried up to `--max-retries` attempts, and re-running the
/// same command after a crash resumes from the last good checkpoint.

#include <cstdio>

#include "beam/analytic.hpp"
#include "core/checkpoint.hpp"
#include "core/fleet.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

bd::util::ConsoleTable make_step_table() {
  return bd::util::ConsoleTable({"step", "kernel intervals", "fallback items",
                                 "GPU time (model s)", "warp eff %",
                                 "L1 hit %", "AI", "GFlop/s"});
}

void append_step_row(bd::util::ConsoleTable& table,
                     const bd::core::StepStats& stats) {
  const auto& m = stats.longitudinal.metrics;
  table.cell(static_cast<std::int64_t>(stats.step))
      .cell(static_cast<std::int64_t>(stats.longitudinal.kernel_intervals))
      .cell(static_cast<std::int64_t>(stats.longitudinal.fallback_items))
      .cell(stats.longitudinal.gpu_seconds, 5)
      .cell(m.warp_execution_efficiency() * 100.0, 1)
      .cell(m.l1_hit_rate() * 100.0, 1)
      .cell(m.arithmetic_intensity(), 2)
      .cell(m.gflops(), 0);
  table.end_row();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("quickstart", "Predictive-RP beam dynamics quickstart");
  args.add_int("particles", 20000, "number of macro-particles");
  args.add_int("grid", 32, "grid resolution (N_X = N_Y)");
  args.add_int("steps", 3, "simulation steps to run");
  args.add_double("tolerance", 1e-6, "rp-integral error tolerance");
  args.add_int("max-retries", 3, "retry attempts under --journal supervision");
  args.add_string("journal", "",
                  "spool/journal dir: run supervised by a SimulationFleet "
                  "(crash-safe journal, checkpoint-based retry, resume)");
  if (!args.parse(argc, argv)) return 0;

  core::SimConfig config;
  config.particles = static_cast<std::size_t>(args.get_int("particles"));
  config.nx = static_cast<std::uint32_t>(args.get_int("grid"));
  config.ny = config.nx;
  config.tolerance = args.get_double("tolerance");
  config.rigid = true;  // keep the quickstart deterministic and comparable

  const std::string journal_dir = args.get_string("journal");
  if (!journal_dir.empty()) {
    // Supervised mode: the fleet journals the job into <journal_dir>,
    // checkpoints it every step, retries step failures from the last
    // checkpoint, and — because submit() adopts an incomplete journaled
    // job of the same name — re-running this command after a crash
    // resumes where the previous process died.
    core::FleetOptions options;
    options.spool_dir = journal_dir;
    options.quantum_steps = 1;
    options.checkpoint_every_quanta = 1;
    core::SimulationFleet fleet(options);
    for (const auto& job : fleet.recovered()) {
      std::printf("journal: job '%s' found at step %llu (digest %08x)\n",
                  job.name.c_str(),
                  static_cast<unsigned long long>(job.checkpoint_step),
                  job.digest);
    }

    util::ConsoleTable table = make_step_table();
    core::FleetJobSpec spec;
    spec.name = "quickstart";
    spec.target_steps = static_cast<std::size_t>(args.get_int("steps"));
    spec.retry.max_attempts =
        static_cast<std::uint32_t>(args.get_int("max-retries"));
    spec.factory = [config]() {
      return std::make_unique<core::Simulation>(
          config, std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
    };
    spec.on_step = [&table](const core::StepStats& stats) {
      append_step_row(table, stats);
    };

    const core::SimulationFleet::JobId id = fleet.submit(spec);
    const core::FleetJobStatus status = fleet.wait(id);
    fleet.drain();
    table.print();
    std::printf("\njob '%s': %s after %llu/%llu steps, %u retr%s, digest %08x\n",
                spec.name.c_str(),
                status.state == core::FleetJobState::kDone ? "done" : "FAILED",
                static_cast<unsigned long long>(status.steps_done),
                static_cast<unsigned long long>(status.target_steps),
                status.attempts, status.attempts == 1 ? "y" : "ies",
                status.digest);
    if (!status.error.empty()) {
      std::printf("error: %s\n", status.error.c_str());
    }
    return status.state == core::FleetJobState::kDone ? 0 : 1;
  }

  auto solver = std::make_unique<core::PredictiveSolver>(simt::tesla_k40());
  core::Simulation sim(config, std::move(solver));
  if (!args.resume_path().empty()) {
    core::restore_checkpoint(sim, args.resume_path());
    std::printf("resumed from %s at step %lld\n", args.resume_path().c_str(),
                static_cast<long long>(sim.current_step()));
  } else {
    sim.initialize();
  }

  const std::string& checkpoint_path = args.checkpoint_path();
  const std::int64_t checkpoint_every = args.checkpoint_every();

  util::ConsoleTable table = make_step_table();
  for (int k = 0; k < args.get_int("steps"); ++k) {
    const core::StepStats stats = sim.step();
    if (!checkpoint_path.empty() && checkpoint_every > 0 &&
        stats.step % checkpoint_every == 0) {
      core::save_checkpoint(sim, checkpoint_path);
    }
    append_step_row(table, stats);
  }
  table.print();

  // Compare the computed force along the beam axis with the analytic wake.
  const auto& grid = sim.force_s();
  const beam::GridSpec& spec = grid.spec();
  const std::uint32_t iy = spec.ny / 2;
  std::printf("\n  s        computed     analytic\n");
  for (std::uint32_t ix = 0; ix < spec.nx; ix += spec.nx / 8) {
    const double s = spec.x_at(ix);
    const double computed = grid.at(ix, iy);
    const double analytic =
        beam::analytic_force(s, spec.y_at(iy), sim.config().longitudinal,
                             sim.config().beam, 12.0, 1e-10);
    std::printf("%7.3f  %11.6f  %11.6f\n", s, computed, analytic);
  }
  return 0;
}
