/// \file quickstart.cpp
/// Minimal end-to-end use of the library: build a simulation with the
/// Predictive-RP solver, run a few steps, and print per-step solver
/// statistics plus a validation snapshot against the analytic wake.

#include <cstdio>

#include "beam/analytic.hpp"
#include "core/checkpoint.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("quickstart", "Predictive-RP beam dynamics quickstart");
  args.add_int("particles", 20000, "number of macro-particles");
  args.add_int("grid", 32, "grid resolution (N_X = N_Y)");
  args.add_int("steps", 3, "simulation steps to run");
  args.add_double("tolerance", 1e-6, "rp-integral error tolerance");
  if (!args.parse(argc, argv)) return 0;

  core::SimConfig config;
  config.particles = static_cast<std::size_t>(args.get_int("particles"));
  config.nx = static_cast<std::uint32_t>(args.get_int("grid"));
  config.ny = config.nx;
  config.tolerance = args.get_double("tolerance");
  config.rigid = true;  // keep the quickstart deterministic and comparable

  auto solver = std::make_unique<core::PredictiveSolver>(simt::tesla_k40());
  core::Simulation sim(config, std::move(solver));
  if (!args.resume_path().empty()) {
    core::restore_checkpoint(sim, args.resume_path());
    std::printf("resumed from %s at step %lld\n", args.resume_path().c_str(),
                static_cast<long long>(sim.current_step()));
  } else {
    sim.initialize();
  }

  const std::string& checkpoint_path = args.checkpoint_path();
  const std::int64_t checkpoint_every = args.checkpoint_every();

  util::ConsoleTable table({"step", "kernel intervals", "fallback items",
                            "GPU time (model s)", "warp eff %", "L1 hit %",
                            "AI", "GFlop/s"});
  for (int k = 0; k < args.get_int("steps"); ++k) {
    const core::StepStats stats = sim.step();
    if (!checkpoint_path.empty() && checkpoint_every > 0 &&
        stats.step % checkpoint_every == 0) {
      core::save_checkpoint(sim, checkpoint_path);
    }
    const auto& m = stats.longitudinal.metrics;
    table.cell(static_cast<std::int64_t>(stats.step))
        .cell(static_cast<std::int64_t>(stats.longitudinal.kernel_intervals))
        .cell(static_cast<std::int64_t>(stats.longitudinal.fallback_items))
        .cell(stats.longitudinal.gpu_seconds, 5)
        .cell(m.warp_execution_efficiency() * 100.0, 1)
        .cell(m.l1_hit_rate() * 100.0, 1)
        .cell(m.arithmetic_intensity(), 2)
        .cell(m.gflops(), 0);
    table.end_row();
  }
  table.print();

  // Compare the computed force along the beam axis with the analytic wake.
  const auto& grid = sim.force_s();
  const beam::GridSpec& spec = grid.spec();
  const std::uint32_t iy = spec.ny / 2;
  std::printf("\n  s        computed     analytic\n");
  for (std::uint32_t ix = 0; ix < spec.nx; ix += spec.nx / 8) {
    const double s = spec.x_at(ix);
    const double computed = grid.at(ix, iy);
    const double analytic =
        beam::analytic_force(s, spec.y_at(iy), sim.config().longitudinal,
                             sim.config().beam, 12.0, 1e-10);
    std::printf("%7.3f  %11.6f  %11.6f\n", s, computed, analytic);
  }
  return 0;
}
