/// \file forecast_demo.cpp
/// Shows the online learning loop at work: runs an *evolving* beam, and at
/// each step reports how well the kNN predictor forecast the access
/// patterns the kernel then actually observed (the paper's §III-B one-step
/// -ahead forecasting), plus the work saved relative to re-running full
/// adaptive quadrature.

#include <cstdio>

#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "ml/metrics.hpp"
#include "simt/device.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("forecast_demo",
                       "online access-pattern forecasting quality");
  args.add_int("particles", 50000, "macro-particles");
  args.add_int("grid", 48, "grid resolution");
  args.add_int("steps", 6, "simulation steps");
  args.add_string("predictor", "knn", "knn | ridge");
  if (!args.parse(argc, argv)) return 0;

  core::SimConfig config;
  config.particles = static_cast<std::size_t>(args.get_int("particles"));
  config.nx = static_cast<std::uint32_t>(args.get_int("grid"));
  config.ny = config.nx;
  config.rigid = false;  // patterns drift: forecasting has work to do
  config.dt = 0.5;
  config.longitudinal.amplitude = 0.4;

  core::PredictiveOptions options;
  if (args.get_string("predictor") == "ridge") {
    options.predictor = ml::PredictorKind::kRidge;
  }
  auto solver = std::make_unique<core::PredictiveSolver>(simt::tesla_k40(),
                                                         options);
  core::PredictiveSolver* solver_ptr = solver.get();
  core::Simulation sim(config, std::move(solver));
  sim.initialize();

  util::ConsoleTable table({"step", "forecast R2", "forecast MAE",
                            "kernel intervals", "fallback items",
                            "fallback %", "train ms"});
  for (int k = 0; k < args.get_int("steps"); ++k) {
    // Forecast for the upcoming step (if the model is trained), then run
    // the step and compare with what was actually observed.
    core::PatternField forecast;
    const bool had_model = solver_ptr->trained();
    sim.particles();  // (no-op; readability)
    if (had_model) {
      // Problem for the upcoming step: step index advances inside step(),
      // so forecast with step+1.
      core::RpProblem next = sim.make_problem(sim.config().longitudinal);
      next.step = sim.current_step() + 1;
      forecast = solver_ptr->forecast(next);
    }
    const core::StepStats stats = sim.step();
    const core::SolveResult& r = stats.longitudinal;

    double r2 = 0.0, mae_v = 0.0;
    if (had_model) {
      std::vector<double> predicted(forecast.flat().begin(),
                                    forecast.flat().end());
      std::vector<double> observed(r.observed.flat().begin(),
                                   r.observed.flat().end());
      r2 = ml::r2_score(predicted, observed);
      mae_v = ml::mae(predicted, observed);
    }
    table.cell(static_cast<std::int64_t>(stats.step))
        .cell(had_model ? util::format_double(r2, 3) : "(bootstrap)")
        .cell(had_model ? util::format_double(mae_v, 3) : "-")
        .cell(static_cast<std::int64_t>(r.kernel_intervals))
        .cell(static_cast<std::int64_t>(r.fallback_items))
        .cell(100.0 * static_cast<double>(r.fallback_items) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, r.kernel_intervals)),
              2)
        .cell(r.train_seconds * 1e3, 2);
    table.end_row();
  }
  std::printf("online forecasting on an evolving beam (%s predictor)\n",
              args.get_string("predictor").c_str());
  table.print();
  std::printf(
      "\nforecast R2 near 1 and a small fallback fraction mean the learned\n"
      "model anticipates the kernel's control flow and data accesses.\n");
  return 0;
}
